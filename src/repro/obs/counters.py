"""Hierarchical counter registry and snapshots.

The simulator keeps its counters where the hot paths already touch them —
``SwitchCounters`` slots, queue ``drops``/``enqueues``/``marks`` fields,
``Port`` byte/fault tallies — so increments stay O(1) attribute bumps with
zero indirection.  What was missing is one place to *read* them: the
aggregate methods on :class:`~repro.net.network.Network` each rescanned the
topology with their own ad-hoc ``getattr`` walks.

:class:`CounterRegistry` closes that gap.  Every instrumented object
registers a *scope* (a dotted hierarchical name such as
``switch.agg_0.port2`` or ``host.host_3.nic``) together with a callable
returning its counters as a plain dict.  :meth:`CounterRegistry.snapshot`
materialises everything into a :class:`CounterSnapshot`, which offers
hierarchical sums (:meth:`CounterSnapshot.total`) and reproduces the exact
semantics of the legacy aggregate methods (:meth:`CounterSnapshot.drop_report`
et al.) so ``Network.total_drops()`` and friends could become thin wrappers.

Scopes used by :class:`~repro.net.network.Network`:

=======================  ====================================================
scope                    counters
=======================  ====================================================
``switch.<name>``        forwards, detours, drops_* (by reason),
                         ingress_overflow (CIOQ only)
``switch.<name>.port<i>`` enqueues, queue_drops, ecn_marks,
                         pfabric_evictions, link_down, corrupt, bytes_sent,
                         pkts_sent, pauses_received, in_flight, qlen
``host.<name>``          misdelivered, unclaimed
``host.<name>.nic``      same port counters as switch ports
``pfc.<name>``           pause_frames_sent, resume_frames_sent
=======================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

__all__ = ["CounterRegistry", "CounterSnapshot"]


class CounterSnapshot:
    """An immutable point-in-time view of every registered counter.

    ``scopes`` maps dotted scope names to ``{counter: value}`` dicts.  All
    aggregation helpers are prefix-based: ``total("detours", "switch.")``
    sums the ``detours`` counter over every scope under ``switch.``.
    """

    __slots__ = ("scopes",)

    def __init__(self, scopes: Mapping[str, Mapping[str, int]]) -> None:
        self.scopes = {name: dict(counters) for name, counters in scopes.items()}

    # ------------------------------------------------------------------
    # generic access
    # ------------------------------------------------------------------
    def total(self, counter: str, prefix: str = "") -> int:
        """Sum ``counter`` over every scope whose name starts with ``prefix``."""
        out = 0
        for scope, counters in self.scopes.items():
            if prefix and not scope.startswith(prefix):
                continue
            out += counters.get(counter, 0)
        return out

    def get(self, scope: str, counter: str, default: int = 0) -> int:
        return self.scopes.get(scope, {}).get(counter, default)

    def iter_scopes(self, prefix: str = "") -> Iterator[tuple[str, dict]]:
        for scope, counters in self.scopes.items():
            if not prefix or scope.startswith(prefix):
                yield scope, counters

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Nested plain-dict view (scope -> counter -> value)."""
        return {scope: dict(counters) for scope, counters in self.scopes.items()}

    def flat(self) -> dict[str, int]:
        """Flat ``{"scope.counter": value}`` view for compact JSON export."""
        return {
            f"{scope}.{counter}": value
            for scope, counters in sorted(self.scopes.items())
            for counter, value in sorted(counters.items())
        }

    # ------------------------------------------------------------------
    # legacy aggregates (the Network.total_*() semantics, exactly)
    # ------------------------------------------------------------------
    def total_detours(self) -> int:
        """DIBS detours across all switches."""
        return self.total("detours", "switch.")

    def total_ecn_marks(self) -> int:
        """ECN CE marks applied by switch egress queues."""
        return self.total("ecn_marks", "switch.")

    def total_switch_drops(self) -> int:
        """Drops recorded by switch forwarding pipelines (all reasons)."""
        return sum(
            counters.get(name, 0)
            for scope, counters in self.scopes.items()
            if scope.startswith("switch.") and "." not in scope[len("switch."):]
            for name in (
                "drops_overflow", "drops_ttl", "drops_no_route",
                "drops_no_detour", "drops_switch_failed",
            )
        )

    def drop_report(self) -> dict[str, int]:
        """Drops by cause, network-wide — key-for-key identical to the
        historical ``Network.drop_report()`` output."""
        return {
            "overflow": self.total("drops_overflow", "switch."),
            "ttl_expired": self.total("drops_ttl", "switch."),
            "no_route": self.total("drops_no_route", "switch."),
            "no_detour_port": self.total("drops_no_detour", "switch."),
            "host_nic": self.total("queue_drops", "host."),
            "pfabric_evictions": self.total("pfabric_evictions", "switch."),
            "ingress_overflow": self.total("ingress_overflow", "switch."),
            "switch_failed": self.total("drops_switch_failed", "switch."),
            "link_down": self.total("link_down"),
            "corrupt": self.total("corrupt"),
        }

    def total_drops(self) -> int:
        """Sum of :meth:`drop_report` (see its docstring for why the causes
        are disjoint and safe to add)."""
        return sum(self.drop_report().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterSnapshot scopes={len(self.scopes)} drops={self.total_drops()}>"


class CounterRegistry:
    """Registered scrape sources, snapshotted on demand.

    Registration happens once at network build time; reading the counters
    costs nothing until :meth:`snapshot` is called, and increments go
    straight to the owning objects' attributes as before — the registry
    adds no per-event overhead.
    """

    __slots__ = ("_sources",)

    def __init__(self) -> None:
        self._sources: list[tuple[str, Callable[[], Mapping[str, int]]]] = []

    def register(self, scope: str, source: Callable[[], Mapping[str, int]]) -> None:
        """Attach ``source`` (a zero-arg callable returning a counter dict)
        under ``scope``.  Scopes registered twice are merged at snapshot
        time (later sources win on key collisions)."""
        if not scope:
            raise ValueError("counter scope cannot be empty")
        self._sources.append((scope, source))

    def snapshot(self) -> CounterSnapshot:
        scopes: dict[str, dict[str, int]] = {}
        for scope, source in self._sources:
            scopes.setdefault(scope, {}).update(source())
        return CounterSnapshot(scopes)

    def __len__(self) -> int:
        return len(self._sources)
