"""Event tracing: detour timelines, drop logs, queue-occupancy snapshots.

These power the anatomy examples that mirror Figures 1 and 2:

* :class:`DetourTrace` hooks every switch's detour/drop callbacks and
  records one row per event — Fig. 2(a) is exactly a scatter of this log.
* :class:`QueueOccupancyTrace` snapshots per-port queue lengths of selected
  switches on a fixed period — Fig. 2(b) is a rendering of three snapshots.
* Per-packet paths (Fig. 1) come from ``Network(trace_paths=True)``, which
  makes every packet accumulate the node names it visits; see
  :func:`arc_counts` for the Fig. 1-style arc weights.

These keep events in memory for the anatomy plots.  For an on-disk,
versioned record of the same events (plus occupancy samples and counter
snapshots) that ``repro trace`` can summarize, use
:class:`repro.obs.trace.TraceWriter` — it chains the same callbacks, so
both can observe one run.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.packet import Packet
    from repro.net.switch import Switch

__all__ = ["DetourTrace", "QueueOccupancyTrace", "arc_counts"]


class DetourTrace:
    """Records every detour decision and drop across a network."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.detour_events: list[tuple[float, str, int, int]] = []  # (t, switch, flow, nth_detour)
        self.drop_events: list[tuple[float, str, int, str]] = []  # (t, switch, flow, reason)
        for switch in network.switches:
            switch.on_detour = self._on_detour
            switch.on_drop = self._on_drop

    def _on_detour(self, time: float, switch: "Switch", pkt: "Packet") -> None:
        self.detour_events.append((time, switch.name, pkt.flow_id, pkt.detours))

    def _on_drop(self, time: float, switch: "Switch", pkt: "Packet", reason: str) -> None:
        self.drop_events.append((time, switch.name, pkt.flow_id, reason))

    # ------------------------------------------------------------------
    def detours_by_switch(self) -> dict[str, int]:
        counts: Counter[str] = Counter()
        for _, switch_name, _, _ in self.detour_events:
            counts[switch_name] += 1
        return dict(counts)

    def detour_timeline(self, bin_s: float) -> dict[str, list[int]]:
        """Per-switch histogram of detour events over time (Fig. 2(a))."""
        if bin_s <= 0:
            raise ValueError("bin width must be positive")
        horizon = max((t for t, *_ in self.detour_events), default=0.0)
        nbins = int(horizon / bin_s) + 1
        out: dict[str, list[int]] = {}
        for t, switch_name, _, _ in self.detour_events:
            series = out.setdefault(switch_name, [0] * nbins)
            series[int(t / bin_s)] += 1
        return out

    def max_detours_seen(self) -> int:
        """Highest per-packet detour count observed (Fig. 1's packet hit 15)."""
        return max((nth for *_, nth in self.detour_events), default=0)


class QueueOccupancyTrace:
    """Periodic per-port queue-length snapshots for selected switches."""

    def __init__(
        self,
        network: "Network",
        switch_names: Optional[Sequence[str]] = None,
        interval_s: float = 1e-3,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.network = network
        self.interval_s = interval_s
        names = list(switch_names) if switch_names is not None else [s.name for s in network.switches]
        self._switches = [network.switch(name) for name in names]
        self.samples: list[tuple[float, dict[str, list[int]]]] = []
        self._stop_at: Optional[float] = None

    def start(self, stop_at: float) -> None:
        self._stop_at = stop_at
        self.network.scheduler.schedule(0.0, self._sample)

    def _sample(self) -> None:
        now = self.network.scheduler.now
        snapshot = {sw.name: sw.queue_occupancy() for sw in self._switches}
        self.samples.append((now, snapshot))
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def peak_occupancy(self, switch_name: str) -> int:
        """Largest single-port backlog ever sampled on ``switch_name``."""
        return max((max(snap[switch_name]) for _, snap in self.samples if switch_name in snap), default=0)


def arc_counts(path: Iterable[str]) -> dict[tuple[str, str], int]:
    """Count traversals of each (from, to) arc along a packet path.

    This is the data behind Fig. 1's weighted arcs: the packet that was
    detoured 15 times crossed some aggregation–core arcs 8+ times.
    """
    counts: Counter[tuple[str, str]] = Counter()
    nodes = list(path)
    for a, b in zip(nodes, nodes[1:]):
        counts[(a, b)] += 1
    return dict(counts)
