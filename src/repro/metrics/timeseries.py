"""Throughput time series.

Samples per-flow goodput and per-port utilization on a fixed period,
producing the curves behind convergence/fairness-over-time analyses (§5.6)
and the link heatmaps of Figure 2.  Unlike :class:`FabricSampler` (which
aggregates to hot-link fractions), these keep the raw series.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.network import Network
    from repro.transport.base import FlowHandle

__all__ = ["FlowThroughputSampler", "PortUtilizationSampler"]


class FlowThroughputSampler:
    """Periodic goodput (receiver in-order bytes/s) per tracked flow."""

    def __init__(self, network: "Network", flows: Sequence["FlowHandle"], interval_s: float = 1e-3):
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.network = network
        self.flows = list(flows)
        self.interval_s = interval_s
        self.times: list[float] = []
        self.series: dict[int, list[float]] = {f.flow_id: [] for f in self.flows}
        self._last_bytes = {f.flow_id: 0 for f in self.flows}
        self._stop_at: Optional[float] = None

    def start(self, stop_at: float) -> None:
        self._stop_at = stop_at
        self.network.scheduler.schedule(self.interval_s, self._sample)

    def _sample(self) -> None:
        now = self.network.scheduler.now
        self.times.append(now)
        for flow in self.flows:
            last = self._last_bytes[flow.flow_id]
            current = flow.bytes_received
            self._last_bytes[flow.flow_id] = current
            self.series[flow.flow_id].append((current - last) * 8.0 / self.interval_s)
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def goodput_bps(self, flow_id: int) -> list[float]:
        """The sampled series for one flow."""
        return self.series[flow_id]

    def jain_over_time(self) -> list[float]:
        """Per-interval Jain index across the tracked flows."""
        from repro.metrics.stats import jain_index

        out = []
        for i in range(len(self.times)):
            snapshot = [self.series[f.flow_id][i] for f in self.flows]
            out.append(jain_index(snapshot))
        return out


class PortUtilizationSampler:
    """Periodic utilization of selected ports (fraction of capacity)."""

    def __init__(self, network: "Network", ports: Sequence["Port"], interval_s: float = 1e-3):
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not ports:
            raise ValueError("need at least one port to sample")
        self.network = network
        self.ports = list(ports)
        self.interval_s = interval_s
        self.times: list[float] = []
        self.series: list[list[float]] = [[] for _ in self.ports]
        self._last_bytes = [p.bytes_sent for p in self.ports]
        self._stop_at: Optional[float] = None

    def start(self, stop_at: float) -> None:
        self._stop_at = stop_at
        self.network.scheduler.schedule(self.interval_s, self._sample)

    def _sample(self) -> None:
        now = self.network.scheduler.now
        self.times.append(now)
        for i, port in enumerate(self.ports):
            sent = port.bytes_sent
            delta = sent - self._last_bytes[i]
            self._last_bytes[i] = sent
            self.series[i].append(delta * 8.0 / (port.rate_bps * self.interval_s))
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def peak_utilization(self, index: int = 0) -> float:
        series = self.series[index]
        return max(series) if series else 0.0

    def mean_utilization(self, index: int = 0) -> float:
        series = self.series[index]
        return sum(series) / len(series) if series else 0.0
