"""Throughput time series.

Samples per-flow goodput and per-port utilization on a fixed period,
producing the curves behind convergence/fairness-over-time analyses (§5.6)
and the link heatmaps of Figure 2.  Unlike :class:`FabricSampler` (which
aggregates to hot-link fractions), these keep the raw series.

Two driving modes:

* **Programmatic** (the original API): ``start(stop_at)`` self-schedules a
  sampling event every ``interval_s``.  Scheduled events perturb the event
  calendar, so this mode is for standalone analyses, not instrumented
  experiment runs.
* **Hook-driven** via :class:`TimeseriesRecorder`: a scheduler run-loop
  hook (never a scheduled event) checks the clock every few hundred
  processed events and calls :meth:`sample_now` once per elapsed interval
  — simulation metrics stay bit-identical with the recorder on or off.
  This is what ``--timeseries-interval-s`` wires into ``run_scenario``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.network import Network
    from repro.transport.base import FlowHandle

__all__ = ["FlowThroughputSampler", "PortUtilizationSampler", "TimeseriesRecorder"]

# Run-loop-hook cadence (processed events) between clock checks in
# TimeseriesRecorder; same bound as the trace occupancy hook.
_CHECK_EVERY_EVENTS = 256


class FlowThroughputSampler:
    """Periodic goodput (receiver in-order bytes/s) per tracked flow."""

    def __init__(self, network: "Network", flows: Sequence["FlowHandle"], interval_s: float = 1e-3):
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.network = network
        self.flows = list(flows)
        self.interval_s = interval_s
        self.times: list[float] = []
        self.series: dict[int, list[float]] = {f.flow_id: [] for f in self.flows}
        self._last_bytes = {f.flow_id: 0 for f in self.flows}
        self._stop_at: Optional[float] = None

    def track(self, flow: "FlowHandle") -> None:
        """Start sampling ``flow`` from the next interval on.  Its series
        is zero-padded over the already-sampled past, so every series stays
        the same length as ``times``."""
        if flow.flow_id in self.series:
            return
        self.flows.append(flow)
        self.series[flow.flow_id] = [0.0] * len(self.times)
        self._last_bytes[flow.flow_id] = 0

    def start(self, stop_at: float) -> None:
        self._stop_at = stop_at
        self.network.scheduler.schedule(self.interval_s, self._sample)

    def sample_now(self, now: float, dt: Optional[float] = None) -> None:
        """Record one sample at time ``now`` over a window of ``dt``
        seconds (defaults to the configured interval)."""
        if dt is None:
            dt = self.interval_s
        self.times.append(now)
        for flow in self.flows:
            last = self._last_bytes[flow.flow_id]
            current = flow.bytes_received
            self._last_bytes[flow.flow_id] = current
            self.series[flow.flow_id].append((current - last) * 8.0 / dt)

    def _sample(self) -> None:
        now = self.network.scheduler.now
        self.sample_now(now)
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def goodput_bps(self, flow_id: int) -> list[float]:
        """The sampled series for one flow."""
        return self.series[flow_id]

    def jain_over_time(self) -> list[float]:
        """Per-interval Jain index across the tracked flows."""
        from repro.metrics.stats import jain_index

        out = []
        for i in range(len(self.times)):
            snapshot = [self.series[f.flow_id][i] for f in self.flows]
            out.append(jain_index(snapshot))
        return out


class PortUtilizationSampler:
    """Periodic utilization of selected ports (fraction of capacity)."""

    def __init__(self, network: "Network", ports: Sequence["Port"], interval_s: float = 1e-3):
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not ports:
            raise ValueError("need at least one port to sample")
        self.network = network
        self.ports = list(ports)
        self.interval_s = interval_s
        self.times: list[float] = []
        self.series: list[list[float]] = [[] for _ in self.ports]
        self._last_bytes = [p.bytes_sent for p in self.ports]
        self._stop_at: Optional[float] = None

    def start(self, stop_at: float) -> None:
        self._stop_at = stop_at
        self.network.scheduler.schedule(self.interval_s, self._sample)

    def sample_now(self, now: float, dt: Optional[float] = None) -> None:
        """Record one sample at time ``now`` over a window of ``dt``
        seconds (defaults to the configured interval)."""
        if dt is None:
            dt = self.interval_s
        self.times.append(now)
        for i, port in enumerate(self.ports):
            sent = port.bytes_sent
            delta = sent - self._last_bytes[i]
            self._last_bytes[i] = sent
            self.series[i].append(delta * 8.0 / (port.rate_bps * dt))

    def _sample(self) -> None:
        now = self.network.scheduler.now
        self.sample_now(now)
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def peak_utilization(self, index: int = 0) -> float:
        series = self.series[index]
        return max(series) if series else 0.0

    def mean_utilization(self, index: int = 0) -> float:
        series = self.series[index]
        return sum(series) / len(series) if series else 0.0


class TimeseriesRecorder:
    """Hook-driven wrapper over both samplers for instrumented runs.

    Drives :class:`FlowThroughputSampler` (over the collector's flows,
    picking up flows the workload registers mid-run) and
    :class:`PortUtilizationSampler` (over ``ports``, default: every
    switch port) from a scheduler run-loop hook.  The hook compares the
    clock every few hundred events and samples once per elapsed interval
    with the *actual* elapsed window as ``dt``, so rates stay correct even
    when a coarse event gap overshoots the nominal interval.
    """

    def __init__(
        self,
        network: "Network",
        interval_s: float,
        collector=None,
        ports: Optional[Sequence["Port"]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("timeseries interval must be positive")
        self.network = network
        self.interval_s = interval_s
        self.collector = collector
        if ports is None:
            ports = [port for sw in network.switches for port in sw.ports]
        self.flows_sampler = FlowThroughputSampler(network, [], interval_s)
        self.ports_sampler = (
            PortUtilizationSampler(network, ports, interval_s) if ports else None
        )
        self._port_names = [
            f"{p.node.name}[{p.index}]" for p in (ports or [])
        ]
        self._hook = None
        self._next_t = 0.0
        self._last_t = 0.0

    # ------------------------------------------------------------------
    def install(self) -> "TimeseriesRecorder":
        now = self.network.scheduler.now
        self._next_t = now + self.interval_s
        self._last_t = now
        self._hook = self.network.scheduler.add_hook(self._tick, _CHECK_EVERY_EVENTS)
        return self

    def uninstall(self) -> None:
        if self._hook is not None:
            self.network.scheduler.remove_hook(self._hook)
            self._hook = None

    def _tick(self, scheduler) -> None:
        now = scheduler.now
        if now < self._next_t:
            return
        if self.collector is not None:
            for flow in self.collector.flows:
                self.flows_sampler.track(flow)
        dt = now - self._last_t
        self.flows_sampler.sample_now(now, dt)
        if self.ports_sampler is not None:
            self.ports_sampler.sample_now(now, dt)
        self._last_t = now
        # Skip ahead past any intervals the event gap jumped over.
        interval = self.interval_s
        self._next_t = now + interval - ((now - self._next_t) % interval)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready payload for ``timeseries.json``."""
        out = {
            "interval_s": self.interval_s,
            "times_s": list(self.flows_sampler.times),
            "flows": {
                str(flow_id): series
                for flow_id, series in sorted(self.flows_sampler.series.items())
            },
        }
        if self.ports_sampler is not None:
            out["ports"] = {
                name: self.ports_sampler.series[i]
                for i, name in enumerate(self._port_names)
            }
        return out
