"""Flow- and query-level measurement collection.

The paper's two headline metrics (§5.3):

* **QCT** — query completion time: for a partition/aggregate query, the
  time from query issue until the *target has received every responder's
  flow*; reported at the 99th percentile.
* **Background FCT** — flow completion time of short (1–10 KB) background
  flows, also at the 99th percentile, to expose collateral damage.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.stats import percentile, summarize
from repro.transport.base import FlowHandle

__all__ = ["QueryRecord", "MetricsCollector", "KIND_BACKGROUND", "KIND_QUERY", "KIND_LONG"]

KIND_BACKGROUND = "background"
KIND_QUERY = "query"
KIND_LONG = "long-lived"


class QueryRecord:
    """One partition/aggregate query: ``degree`` response flows to a target."""

    __slots__ = ("query_id", "target", "start_time", "flows", "_remaining", "done_time")

    def __init__(self, query_id: int, target: int, start_time: float) -> None:
        self.query_id = query_id
        self.target = target
        self.start_time = start_time
        self.flows: list[FlowHandle] = []
        self._remaining = 0
        self.done_time: Optional[float] = None

    def attach(self, flow: FlowHandle) -> None:
        self.flows.append(flow)
        self._remaining += 1
        flow.on_complete = self._flow_done

    def _flow_done(self, flow: FlowHandle) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.done_time = flow.receiver_done_time

    @property
    def completed(self) -> bool:
        return self.done_time is not None

    @property
    def qct(self) -> Optional[float]:
        if self.done_time is None:
            return None
        return self.done_time - self.start_time


class MetricsCollector:
    """Accumulates flows and queries for one simulation run."""

    def __init__(self) -> None:
        self.flows: list[FlowHandle] = []
        self.queries: list[QueryRecord] = []
        # (time, kind, node_a, node_b) rows appended by the fault injector
        # as each scheduled fault is applied (see repro.faults.injector).
        self.fault_events: list[tuple[float, str, str, str]] = []

    # ------------------------------------------------------------------
    def add_flow(self, flow: FlowHandle) -> None:
        self.flows.append(flow)

    def new_query(self, query_id: int, target: int, start_time: float) -> QueryRecord:
        record = QueryRecord(query_id, target, start_time)
        self.queries.append(record)
        return record

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def completed_flows(
        self,
        kind: Optional[str] = None,
        min_size: int = 0,
        max_size: Optional[int] = None,
    ) -> list[FlowHandle]:
        out = []
        for flow in self.flows:
            if not flow.completed:
                continue
            if kind is not None and flow.kind != kind:
                continue
            if flow.size < min_size:
                continue
            if max_size is not None and flow.size > max_size:
                continue
            out.append(flow)
        return out

    def fct_values(
        self,
        kind: Optional[str] = None,
        min_size: int = 0,
        max_size: Optional[int] = None,
    ) -> list[float]:
        return [f.fct for f in self.completed_flows(kind, min_size, max_size)]

    def qct_values(self) -> list[float]:
        return [q.qct for q in self.queries if q.completed]

    # ------------------------------------------------------------------
    # the paper's headline numbers
    # ------------------------------------------------------------------
    def qct_p99(self) -> Optional[float]:
        values = self.qct_values()
        return percentile(values, 99) if values else None

    def short_bg_fct_p99(self, min_size: int = 1_000, max_size: int = 10_000) -> Optional[float]:
        """99th-percentile FCT of short (1–10 KB) background flows (§5.3)."""
        values = self.fct_values(kind=KIND_BACKGROUND, min_size=min_size, max_size=max_size)
        return percentile(values, 99) if values else None

    def incomplete_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for flow in self.flows:
            if not flow.completed:
                out[flow.kind] = out.get(flow.kind, 0) + 1
        return out

    def summary(self) -> dict[str, object]:
        qcts = self.qct_values()
        return {
            "flows": len(self.flows),
            "flows_completed": sum(1 for f in self.flows if f.completed),
            "queries": len(self.queries),
            "queries_completed": len(qcts),
            "qct": summarize(qcts),
            "bg_fct_short": summarize(
                self.fct_values(kind=KIND_BACKGROUND, min_size=1_000, max_size=10_000)
            ),
            "retransmits": sum(f.retransmits for f in self.flows),
            "timeouts": sum(f.timeouts for f in self.flows),
            "fault_events": len(self.fault_events),
        }
