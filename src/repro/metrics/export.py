"""Result export: JSON and CSV writers for flows, queries, and results.

Downstream users typically want raw per-flow records to plot their own
CDFs; these helpers dump everything the collector knows in stable, typed
formats.  Used by the examples and handy for comparing runs across code
versions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.parallel import RunTelemetry
    from repro.experiments.runner import ExperimentResult
    from repro.metrics.collector import MetricsCollector

__all__ = ["flows_to_records", "queries_to_records", "write_flows_csv",
           "write_queries_csv", "export_result_json", "export_telemetry_json"]

PathLike = Union[str, Path]

_FLOW_FIELDS = [
    "flow_id", "kind", "src", "dst", "size", "start_time",
    "receiver_done_time", "fct", "retransmits", "timeouts",
    "packets_sent", "packets_received", "completed",
]

_QUERY_FIELDS = ["query_id", "target", "start_time", "done_time", "qct", "degree", "completed"]


def flows_to_records(collector: "MetricsCollector") -> list[dict]:
    """One plain dict per flow, completed or not."""
    records = []
    for flow in collector.flows:
        records.append(
            {
                "flow_id": flow.flow_id,
                "kind": flow.kind,
                "src": flow.src,
                "dst": flow.dst,
                "size": flow.size,
                "start_time": flow.start_time,
                "receiver_done_time": flow.receiver_done_time,
                "fct": flow.fct,
                "retransmits": flow.retransmits,
                "timeouts": flow.timeouts,
                "packets_sent": flow.packets_sent,
                "packets_received": flow.packets_received,
                "completed": flow.completed,
            }
        )
    return records


def queries_to_records(collector: "MetricsCollector") -> list[dict]:
    """One plain dict per query."""
    return [
        {
            "query_id": q.query_id,
            "target": q.target,
            "start_time": q.start_time,
            "done_time": q.done_time,
            "qct": q.qct,
            "degree": len(q.flows),
            "completed": q.completed,
        }
        for q in collector.queries
    ]


def write_flows_csv(collector: "MetricsCollector", path: PathLike) -> Path:
    """Dump all flow records to CSV; returns the written path."""
    return _write_csv(Path(path), _FLOW_FIELDS, flows_to_records(collector))


def write_queries_csv(collector: "MetricsCollector", path: PathLike) -> Path:
    """Dump all query records to CSV; returns the written path."""
    return _write_csv(Path(path), _QUERY_FIELDS, queries_to_records(collector))


def _write_csv(path: Path, fields: list[str], records: list[dict]) -> Path:
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)
    return path


def export_result_json(result: "ExperimentResult", path: PathLike) -> Path:
    """Serialize an :class:`ExperimentResult` (scenario + metrics) to JSON."""
    from dataclasses import asdict

    scenario = asdict(result.scenario)
    # The detour policy object isn't JSON-serializable; its name is.
    payload = {
        "scenario": scenario,
        "qct_values": result.qct_values,
        "bg_fct_short_values": result.bg_fct_short_values,
        "bg_fct_large_values": result.bg_fct_large_values,
        "qct_p99_ms": result.qct_p99_ms,
        "bg_fct_p99_ms": result.bg_fct_p99_ms,
        "queries_started": result.queries_started,
        "queries_completed": result.queries_completed,
        "drops": result.drops,
        "detours": result.detours,
        "ecn_marks": result.ecn_marks,
        "timeouts": result.timeouts,
        "retransmits": result.retransmits,
        "events": result.events,
        "wall_seconds": result.wall_seconds,
        "faults_applied": result.faults_applied,
        "fault_packets_killed": result.fault_packets_killed,
        "invariant_checks": result.invariant_checks,
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, default=str))
    return out


def export_telemetry_json(telemetry: "RunTelemetry", path: PathLike) -> Path:
    """Serialize sweep-execution telemetry from the parallel executor.

    The payload covers throughput (runs completed, events/sec, per-run wall
    time, speedup), failure containment (retry and per-reason failure
    counts, replay-bundle paths), graceful-degradation accounting (backoff
    waits and total backoff seconds, timeout escalations, whether the sweep
    was interrupted), and journal activity (cells resumed from / written to
    a ``--journal-dir``) — everything ``RunTelemetry.as_dict`` carries.
    """
    out = Path(path)
    out.write_text(json.dumps(telemetry.as_dict(), indent=2, default=str))
    return out
