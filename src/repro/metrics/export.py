"""Result export: one artifact bundle per run, plus the typed writers.

:func:`write_artifacts` is the single entry point: given an
:class:`~repro.experiments.runner.ExperimentResult` and an output
directory it emits everything a run produced — per-flow and per-query
CSVs, the result JSON (scenario + metrics + scheduler profile), executor
telemetry JSON, a copy of any structured trace files, and a
``manifest.json`` indexing the bundle.  The individual ``write_*`` /
``export_*`` names remain for callers that want exactly one artifact;
they are the same writers ``write_artifacts`` composes.

Downstream users typically want raw per-flow records to plot their own
CDFs; these helpers dump everything the collector knows in stable, typed
formats.  Used by the examples and handy for comparing runs across code
versions.
"""

from __future__ import annotations

import csv
import glob as _glob
import json
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.parallel import RunTelemetry
    from repro.experiments.runner import ExperimentResult
    from repro.metrics.collector import MetricsCollector

__all__ = ["write_artifacts", "MANIFEST_VERSION", "flows_to_records",
           "queries_to_records", "write_flows_csv", "write_queries_csv",
           "export_result_json", "export_telemetry_json"]

# Bumped when the bundle layout (file names / manifest keys) changes.
# v2: added spans.jsonl, fct_attribution.json, timeseries.json and the
# rto_wait_s flow column.
MANIFEST_VERSION = 2

PathLike = Union[str, Path]

_FLOW_FIELDS = [
    "flow_id", "kind", "src", "dst", "size", "start_time",
    "receiver_done_time", "fct", "retransmits", "timeouts", "rto_wait_s",
    "packets_sent", "packets_received", "completed",
]

_QUERY_FIELDS = ["query_id", "target", "start_time", "done_time", "qct", "degree", "completed"]


def flows_to_records(collector: "MetricsCollector") -> list[dict]:
    """One plain dict per flow, completed or not."""
    records = []
    for flow in collector.flows:
        records.append(
            {
                "flow_id": flow.flow_id,
                "kind": flow.kind,
                "src": flow.src,
                "dst": flow.dst,
                "size": flow.size,
                "start_time": flow.start_time,
                "receiver_done_time": flow.receiver_done_time,
                "fct": flow.fct,
                "retransmits": flow.retransmits,
                "timeouts": flow.timeouts,
                "rto_wait_s": flow.rto_wait_s,
                "packets_sent": flow.packets_sent,
                "packets_received": flow.packets_received,
                "completed": flow.completed,
            }
        )
    return records


def queries_to_records(collector: "MetricsCollector") -> list[dict]:
    """One plain dict per query."""
    return [
        {
            "query_id": q.query_id,
            "target": q.target,
            "start_time": q.start_time,
            "done_time": q.done_time,
            "qct": q.qct,
            "degree": len(q.flows),
            "completed": q.completed,
        }
        for q in collector.queries
    ]


def write_flows_csv(collector: "MetricsCollector", path: PathLike) -> Path:
    """Dump all flow records to CSV; returns the written path.

    Prefer :func:`write_artifacts` for the full bundle; this writes the
    same ``flows.csv`` on its own.
    """
    return _write_csv(Path(path), _FLOW_FIELDS, flows_to_records(collector))


def write_queries_csv(collector: "MetricsCollector", path: PathLike) -> Path:
    """Dump all query records to CSV; returns the written path.

    Prefer :func:`write_artifacts` for the full bundle; this writes the
    same ``queries.csv`` on its own.
    """
    return _write_csv(Path(path), _QUERY_FIELDS, queries_to_records(collector))


def _write_csv(path: Path, fields: list[str], records: list[dict]) -> Path:
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(records)
    return path


def export_result_json(result: "ExperimentResult", path: PathLike) -> Path:
    """Serialize an :class:`ExperimentResult` (scenario + metrics) to JSON.

    Prefer :func:`write_artifacts` for the full bundle; this writes the
    same ``result.json`` on its own.
    """
    from dataclasses import asdict

    scenario = asdict(result.scenario)
    # The detour policy object isn't JSON-serializable; its name is.
    payload = {
        "scenario": scenario,
        "qct_values": result.qct_values,
        "bg_fct_short_values": result.bg_fct_short_values,
        "bg_fct_large_values": result.bg_fct_large_values,
        "qct_p99_ms": result.qct_p99_ms,
        "bg_fct_p99_ms": result.bg_fct_p99_ms,
        "queries_started": result.queries_started,
        "queries_completed": result.queries_completed,
        "drops": result.drops,
        "detours": result.detours,
        "ecn_marks": result.ecn_marks,
        "timeouts": result.timeouts,
        "retransmits": result.retransmits,
        "events": result.events,
        "wall_seconds": result.wall_seconds,
        "faults_applied": result.faults_applied,
        "fault_packets_killed": result.fault_packets_killed,
        "invariant_checks": result.invariant_checks,
        "controller": result.controller_stats,
        "profile": result.profile,
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, default=str))
    return out


def export_telemetry_json(telemetry: "RunTelemetry", path: PathLike) -> Path:
    """Serialize sweep-execution telemetry from the parallel executor.

    The payload covers throughput (runs completed, events/sec, per-run wall
    time, speedup), failure containment (retry and per-reason failure
    counts, replay-bundle paths), graceful-degradation accounting (backoff
    waits and total backoff seconds, timeout escalations, whether the sweep
    was interrupted), and journal activity (cells resumed from / written to
    a ``--journal-dir``) — everything ``RunTelemetry.as_dict`` carries.

    Prefer :func:`write_artifacts` for the full bundle; this writes the
    same ``telemetry.json`` on its own.
    """
    out = Path(path)
    out.write_text(json.dumps(telemetry.as_dict(), indent=2, default=str))
    return out


def write_artifacts(
    result: "ExperimentResult",
    out_dir: PathLike,
    telemetry: Optional["RunTelemetry"] = None,
    trace_file: Optional[str] = None,
) -> dict[str, Path]:
    """Write the full artifact bundle for one run into ``out_dir``.

    The bundle (every piece optional except ``result.json`` and the
    manifest):

    ===================  ==============================================
    ``result.json``      scenario + metrics + scheduler profile
    ``flows.csv``        per-flow records (needs ``result.collector``)
    ``queries.csv``      per-query records (needs ``result.collector``)
    ``telemetry.json``   executor telemetry, when ``telemetry`` is given
    ``profile.json``     the scheduler profile alone, when profiled
    ``trace*.jsonl``     copies of the structured trace file(s)
    ``spans.jsonl``      finished packet spans (``span_sample_rate > 0``)
    ``fct_attribution.json``  per-flow FCT decomposition from the spans
    ``timeseries.json``  goodput/utilization series (``timeseries_interval_s``)
    ``manifest.json``    index of the above + skip reasons
    ===================  ==============================================

    ``trace_file`` defaults to ``result.scenario.trace_file``; a
    ``{seed}`` placeholder matches every per-seed file.  Results that
    crossed a process boundary carry no collector, so their CSVs are
    skipped (the manifest says so).  Returns ``{artifact: path}`` for
    everything written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    skipped: dict[str, str] = {}

    written["result"] = export_result_json(result, out / "result.json")

    collector = getattr(result, "collector", None)
    if collector is not None:
        written["flows"] = write_flows_csv(collector, out / "flows.csv")
        written["queries"] = write_queries_csv(collector, out / "queries.csv")
    else:
        skipped["flows"] = skipped["queries"] = (
            "no collector on this result (it crossed a process boundary)"
        )

    if telemetry is not None:
        written["telemetry"] = export_telemetry_json(telemetry, out / "telemetry.json")

    if result.profile:
        profile_path = out / "profile.json"
        profile_path.write_text(json.dumps(result.profile, indent=2))
        written["profile"] = profile_path

    if trace_file is None:
        trace_file = getattr(result.scenario, "trace_file", None)
    if trace_file:
        matches = sorted(_glob.glob(trace_file.replace("{seed}", "*")))
        if not matches:
            skipped["trace"] = f"no trace file matching {trace_file!r}"
        for i, src in enumerate(matches):
            dst = out / Path(src).name
            if dst.resolve() != Path(src).resolve():
                shutil.copyfile(src, dst)
            written["trace" if i == 0 else f"trace_{i}"] = dst

    # Packet spans + the FCT attribution built from them.  In-memory
    # records (serial runs) are authoritative; a result that crossed a
    # process boundary recovers its spans from the copied trace files.
    span_records = getattr(result, "span_records", None)
    if span_records is None and getattr(result.scenario, "span_sample_rate", 0) > 0:
        from repro.obs.trace import read_trace

        recovered: list[dict] = []
        for name in sorted(n for n in written if n.startswith("trace")):
            recovered.extend(read_trace(written[name], kind="span"))
        span_records = recovered or None
        if span_records is None:
            skipped["spans"] = (
                "spans were sampled but neither in-memory records nor a "
                "trace file reached the exporter"
            )
    if span_records:
        from repro.obs.forensics import ATTRIBUTION_VERSION, attribute_flows

        spans_path = out / "spans.jsonl"
        with spans_path.open("w") as fh:
            for record in span_records:
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        written["spans"] = spans_path
        attribution_path = out / "fct_attribution.json"
        attribution_path.write_text(json.dumps({
            "version": ATTRIBUTION_VERSION,
            "flows": attribute_flows(span_records),
        }, indent=2))
        written["fct_attribution"] = attribution_path

    if getattr(result, "timeseries", None):
        timeseries_path = out / "timeseries.json"
        timeseries_path.write_text(json.dumps(result.timeseries, indent=2))
        written["timeseries"] = timeseries_path

    manifest = {
        "version": MANIFEST_VERSION,
        "scenario": result.scenario.name,
        "scheme": result.scenario.scheme,
        "artifacts": {name: path.name for name, path in written.items()},
        "skipped": skipped,
    }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    written["manifest"] = manifest_path
    return written
