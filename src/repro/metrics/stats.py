"""Statistics helpers: percentiles, summaries, Jain's fairness index."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

__all__ = ["percentile", "mean", "summarize", "jain_index", "cdf_points"]


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (the numpy ``linear`` method).

    ``p`` is in [0, 100].  Raises on an empty input — the caller should
    decide what an absent population means.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    interpolated = data[lo] * (1.0 - frac) + data[hi] * frac
    # Two-sided interpolation can round just outside [data[lo], data[hi]]
    # (e.g. x*(1-f) + x*f != x for some denormal x), so clamp to the bracket.
    if interpolated < data[lo]:
        return data[lo]
    if interpolated > data[hi]:
        return data[hi]
    return interpolated


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / median / p99 / min / max / count in one dict."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
    }


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1].

    Equal allocations give 1.0; a single hog among ``n`` gives ``1/n``.
    Used in §5.6 for the long-lived-flow fairness experiment.
    """
    if not values:
        raise ValueError("fairness of empty allocation")
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    peak = max(values)
    if peak == 0:
        return 1.0  # everyone got exactly nothing: perfectly fair
    # Normalize by the peak so squaring cannot under/overflow: subnormal
    # squares would otherwise lose enough precision to push the index
    # outside [1/n, 1].
    scaled = [v / peak for v in values]
    total = sum(scaled)
    squares = sum(v * v for v in scaled)
    return (total * total) / (len(values) * squares)


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """Sorted (value, cumulative_fraction) pairs for plotting CDFs."""
    data = sorted(values)
    n = len(data)
    return [(v, (i + 1) / n) for i, v in enumerate(data)]
