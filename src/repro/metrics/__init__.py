"""Measurement: flow/query records, statistics, fabric sampling, traces.

The observability layer (:mod:`repro.obs`) produces the scoped counter
snapshots, scheduler profiles, and structured JSONL traces; this package
turns collected measurements into artifacts.  :func:`write_artifacts`
bundles everything one run produced into a directory.
"""

from repro.metrics.collector import (
    KIND_BACKGROUND,
    KIND_LONG,
    KIND_QUERY,
    MetricsCollector,
    QueryRecord,
)
from repro.metrics.export import (
    export_result_json,
    export_telemetry_json,
    flows_to_records,
    queries_to_records,
    write_artifacts,
    write_flows_csv,
    write_queries_csv,
)
from repro.metrics.hotlinks import FabricSampler
from repro.metrics.stats import cdf_points, jain_index, mean, percentile, summarize
from repro.metrics.trace import DetourTrace, QueueOccupancyTrace, arc_counts
from repro.obs import (
    CounterRegistry,
    CounterSnapshot,
    SchedulerProfiler,
    TraceWriter,
    read_trace,
    summarize_trace,
)

__all__ = [
    "MetricsCollector",
    "QueryRecord",
    "KIND_BACKGROUND",
    "KIND_QUERY",
    "KIND_LONG",
    "FabricSampler",
    "write_artifacts",
    "export_result_json",
    "export_telemetry_json",
    "flows_to_records",
    "queries_to_records",
    "write_flows_csv",
    "write_queries_csv",
    "percentile",
    "mean",
    "summarize",
    "jain_index",
    "cdf_points",
    "DetourTrace",
    "QueueOccupancyTrace",
    "arc_counts",
    # Observability re-exports (repro.obs).
    "CounterRegistry",
    "CounterSnapshot",
    "SchedulerProfiler",
    "TraceWriter",
    "read_trace",
    "summarize_trace",
]
