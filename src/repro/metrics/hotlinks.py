"""Hot-link and neighbor-buffer analysis (Figures 4 and 5).

The paper's premise check: congestion is sparse (few links "hot" at any
instant) and localized (plenty of free buffer within 1–2 switch hops of a
hot link).  :class:`FabricSampler` bins time into fixed intervals and, per
bin, computes

* the fraction of directed fabric links whose utilization in that bin is at
  least ``hot_threshold`` (Fig. 4 uses 90 %, Fig. 3's source used 50 %),
* the fraction of buffer slots *available* in the 1-hop and 2-hop switch
  neighborhoods of the switches driving hot links (Fig. 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["FabricSampler"]


class FabricSampler:
    """Periodic sampler of fabric-link utilization and buffer occupancy."""

    def __init__(
        self,
        network: "Network",
        interval_s: float = 1e-3,
        hot_threshold: float = 0.9,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not 0.0 < hot_threshold <= 1.0:
            raise ValueError("hot threshold must be in (0, 1]")
        self.network = network
        self.interval_s = interval_s
        self.hot_threshold = hot_threshold

        self._ports = network.fabric_ports()
        self._last_bytes = [port.bytes_sent for _, port in self._ports]
        self._stop_at: Optional[float] = None

        # Per-bin series.
        self.hot_fractions: list[float] = []
        self.neighbor_free_1hop: list[float] = []
        self.neighbor_free_2hop: list[float] = []

        # Switch fabric adjacency, by name.
        self._adj = network.topo.switch_adjacency()
        self._two_hop = {
            name: self._k_hop_neighbors(name, 2) for name in self._adj
        }

    def _k_hop_neighbors(self, start: str, k: int) -> set[str]:
        seen = {start}
        frontier = {start}
        for _ in range(k):
            nxt = set()
            for node in frontier:
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        nxt.add(nbr)
            frontier = nxt
        seen.discard(start)
        return seen

    # ------------------------------------------------------------------
    def start(self, stop_at: float) -> None:
        """Begin sampling now; the last bin closes at ``stop_at``."""
        self._stop_at = stop_at
        self.network.scheduler.schedule(self.interval_s, self._sample)

    def _sample(self) -> None:
        fractions_hot, hot_switches = self._utilization_pass()
        self.hot_fractions.append(fractions_hot)
        if hot_switches:
            self.neighbor_free_1hop.append(self._free_fraction(hot_switches, hops=1))
            self.neighbor_free_2hop.append(self._free_fraction(hot_switches, hops=2))
        now = self.network.scheduler.now
        if self._stop_at is None or now + self.interval_s <= self._stop_at + 1e-12:
            self.network.scheduler.schedule(self.interval_s, self._sample)

    def _utilization_pass(self) -> tuple[float, set[str]]:
        hot = 0
        hot_switches: set[str] = set()
        for i, (switch, port) in enumerate(self._ports):
            sent = port.bytes_sent
            delta = sent - self._last_bytes[i]
            self._last_bytes[i] = sent
            utilization = delta * 8.0 / (port.rate_bps * self.interval_s)
            if utilization >= self.hot_threshold:
                hot += 1
                hot_switches.add(switch.name)
        fraction = hot / len(self._ports) if self._ports else 0.0
        return fraction, hot_switches

    def _free_fraction(self, hot_switches: set[str], hops: int) -> float:
        neighborhood: set[str] = set()
        for name in hot_switches:
            nbrs = self._adj[name] if hops == 1 else self._two_hop[name]
            neighborhood.update(nbrs)
        neighborhood -= hot_switches
        if not neighborhood:
            return 1.0
        used = 0
        capacity = 0
        for name in neighborhood:
            switch = self.network.switch(name)
            for port in switch.ports:
                capacity += port.queue.capacity_hint
                used += len(port.queue)
        if capacity == 0:
            return 1.0
        return 1.0 - used / capacity

    # ------------------------------------------------------------------
    @property
    def bins(self) -> int:
        return len(self.hot_fractions)
