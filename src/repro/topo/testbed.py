"""The Emulab/Click testbed topology of §5.2.

"Our testbed was a small FatTree topology with two aggregator switches,
three edge switches, and two servers per rack" — six servers, every edge
switch linked to both aggregation switches, 1 Gbps everywhere (Table 1).
Figure 6's incast experiment runs five senders against the last server.
"""

from __future__ import annotations

from repro.topo.base import Topology

__all__ = ["click_testbed"]


def click_testbed(rate_bps: float = 1e9, delay_s: float = 25e-6) -> Topology:
    """Build the 5-switch, 6-server Click evaluation topology."""
    topo = Topology(name="click-testbed")
    aggs = [topo.add_switch(f"agg_{i}") for i in range(2)]
    for e in range(3):
        edge = topo.add_switch(f"edge_{e}")
        for agg in aggs:
            topo.add_link(edge, agg, rate_bps, delay_s)
        for h in range(2):
            host = topo.add_host(f"host_{e * 2 + h}")
            topo.add_link(host, edge, rate_bps, delay_s)
    topo.validate()
    return topo
