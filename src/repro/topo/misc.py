"""Additional topologies discussed by the paper.

* :func:`leaf_spine` — the common two-tier Clos; used in tests and as an
  extra example scenario.
* :func:`linear` — the degenerate chain of §7 footnote 10: DIBS still
  functions with only a reverse path to detour onto.
* :func:`jellyfish` — random regular switch graph (Singla et al.), named in
  §7 as a topology whose path diversity suits detouring.
"""

from __future__ import annotations

import random

from repro.sim.rng import stable_hash
from repro.topo.base import Topology

__all__ = ["leaf_spine", "linear", "jellyfish"]


def leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    rate_bps: float = 1e9,
    delay_s: float = 5e-6,
) -> Topology:
    """Two-tier leaf–spine fabric; every leaf connects to every spine."""
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ValueError("leaf-spine dimensions must be positive")
    topo = Topology(name=f"leafspine-{leaves}x{spines}")
    spine_names = [topo.add_switch(f"spine_{s}") for s in range(spines)]
    for l_idx in range(leaves):
        leaf = topo.add_switch(f"leaf_{l_idx}")
        for spine in spine_names:
            topo.add_link(leaf, spine, rate_bps, delay_s)
        for h in range(hosts_per_leaf):
            host = topo.add_host(f"host_{l_idx * hosts_per_leaf + h}")
            topo.add_link(host, leaf, rate_bps, delay_s)
    topo.validate()
    return topo


def linear(
    switches: int = 3,
    hosts_per_switch: int = 1,
    rate_bps: float = 1e9,
    delay_s: float = 5e-6,
) -> Topology:
    """A chain of switches — the worst case for detouring (§7): the only
    detour options are backwards along the chain."""
    if switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(name=f"linear-{switches}")
    names = [topo.add_switch(f"sw_{i}") for i in range(switches)]
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b, rate_bps, delay_s)
    for s_idx, sw in enumerate(names):
        for h in range(hosts_per_switch):
            host = topo.add_host(f"host_{s_idx * hosts_per_switch + h}")
            topo.add_link(host, sw, rate_bps, delay_s)
    topo.validate()
    return topo


def jellyfish(
    switches: int = 10,
    fabric_degree: int = 3,
    hosts_per_switch: int = 1,
    rate_bps: float = 1e9,
    delay_s: float = 5e-6,
    seed: int = 0,
) -> Topology:
    """Jellyfish: switches wired into a random ``fabric_degree``-regular
    graph, each with ``hosts_per_switch`` servers.

    Uses the stub-matching construction with restarts; raises after too many
    failed attempts (e.g. infeasible degree).
    """
    if switches * fabric_degree % 2:
        raise ValueError("switches * fabric_degree must be even")
    if fabric_degree >= switches:
        raise ValueError("fabric_degree must be < number of switches")

    rng = random.Random(stable_hash(seed, "jellyfish"))
    for _attempt in range(200):
        edges = _random_regular_edges(switches, fabric_degree, rng)
        if edges is not None and _connected(switches, edges):
            break
    else:
        raise RuntimeError("failed to build a connected random regular graph")

    topo = Topology(name=f"jellyfish-{switches}x{fabric_degree}")
    names = [topo.add_switch(f"sw_{i}") for i in range(switches)]
    for a, b in sorted(edges):
        topo.add_link(names[a], names[b], rate_bps, delay_s)
    for s_idx, sw in enumerate(names):
        for h in range(hosts_per_switch):
            host = topo.add_host(f"host_{s_idx * hosts_per_switch + h}")
            topo.add_link(host, sw, rate_bps, delay_s)
    topo.validate()
    return topo


def _random_regular_edges(n: int, d: int, rng: random.Random) -> set[tuple[int, int]] | None:
    """One stub-matching attempt; ``None`` if it wedges on a repeat/self edge."""
    stubs = [v for v in range(n) for _ in range(d)]
    rng.shuffle(stubs)
    edges: set[tuple[int, int]] = set()
    for a, b in zip(stubs[::2], stubs[1::2]):
        if a == b:
            return None
        edge = (min(a, b), max(a, b))
        if edge in edges:
            return None
        edges.add(edge)
    return edges


def _connected(n: int, edges: set[tuple[int, int]]) -> bool:
    adj: dict[int, list[int]] = {v: [] for v in range(n)}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for nbr in adj[node]:
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    return len(seen) == n
