"""HyperX topology (Ahn et al., SC 2009), discussed in §7.

A regular HyperX is an L-dimensional lattice of switches, S_k switches per
dimension, where a switch connects directly to *every* other switch that
differs from it in exactly one coordinate.  The paper calls out HyperX as
detour-friendly: "HyperX networks have many paths of different lengths
between pairs of hosts.  One can imagine using the short paths under normal
conditions, but using detouring to exploit the larger path diversity when
conditions warranted."
"""

from __future__ import annotations

import itertools

from repro.topo.base import Topology

__all__ = ["hyperx"]


def hyperx(
    shape: tuple[int, ...] = (3, 3),
    hosts_per_switch: int = 1,
    rate_bps: float = 1e9,
    delay_s: float = 5e-6,
) -> Topology:
    """Build a regular HyperX with the given lattice ``shape``.

    ``shape=(3, 3)`` gives 9 switches each with 4 fabric neighbors (2 per
    dimension); ``shape=(4,)`` degenerates to a 4-switch full mesh.
    """
    if not shape or any(s < 2 for s in shape):
        raise ValueError("each HyperX dimension must have at least 2 switches")
    if hosts_per_switch < 0:
        raise ValueError("hosts_per_switch cannot be negative")

    topo = Topology(name="hyperx-" + "x".join(str(s) for s in shape))
    coords = list(itertools.product(*(range(s) for s in shape)))
    names = {c: topo.add_switch("sw_" + "_".join(str(x) for x in c)) for c in coords}

    # Connect switches differing in exactly one coordinate (each dimension
    # is a clique).  Emit each link once via an ordering test.
    for c in coords:
        for dim in range(len(shape)):
            for other_val in range(c[dim] + 1, shape[dim]):
                other = c[:dim] + (other_val,) + c[dim + 1:]
                topo.add_link(names[c], names[other], rate_bps, delay_s)

    host_idx = 0
    for c in coords:
        for _ in range(hosts_per_switch):
            host = topo.add_host(f"host_{host_idx}")
            topo.add_link(host, names[c], rate_bps, delay_s)
            host_idx += 1

    topo.validate()
    return topo
