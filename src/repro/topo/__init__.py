"""Data center topologies."""

from repro.topo.base import LinkSpec, Topology
from repro.topo.fattree import fat_tree, fat_tree_stats
from repro.topo.hyperx import hyperx
from repro.topo.misc import jellyfish, leaf_spine, linear
from repro.topo.testbed import click_testbed

__all__ = [
    "LinkSpec",
    "Topology",
    "fat_tree",
    "fat_tree_stats",
    "hyperx",
    "click_testbed",
    "leaf_spine",
    "linear",
    "jellyfish",
]
