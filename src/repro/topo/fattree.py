"""K-ary fat-tree topology (Al-Fares et al., SIGCOMM 2008).

The paper's main simulations use K=8 (128 hosts, 1 Gbps links); our scaled
default experiments use K=4 (16 hosts).  §5.5.4 studies oversubscription by
"lowering the capacity of the links between switches by a factor of 2, 3
and 4 (providing oversubscription of 1:4, 1:9 and 1:16)" — reproduced here
via ``inter_switch_slowdown``.
"""

from __future__ import annotations

from repro.topo.base import Topology

__all__ = ["fat_tree", "fat_tree_stats"]


def fat_tree(
    k: int = 4,
    rate_bps: float = 1e9,
    delay_s: float = 5e-6,
    inter_switch_slowdown: float = 1.0,
) -> Topology:
    """Build a K-ary fat-tree.

    Parameters
    ----------
    k:
        Arity; must be even.  Yields ``k`` pods, ``k/2`` edge and ``k/2``
        aggregation switches per pod, ``(k/2)^2`` core switches and
        ``k^3/4`` hosts.
    rate_bps, delay_s:
        Host link rate and per-link propagation delay.
    inter_switch_slowdown:
        Divide switch-to-switch link rates by this factor (1 = rearrangeably
        non-blocking; 2/3/4 = 1:4 / 1:9 / 1:16 oversubscription per §5.5.4).
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got k={k}")
    if inter_switch_slowdown < 1.0:
        raise ValueError("inter_switch_slowdown must be >= 1")

    topo = Topology(name=f"fattree-k{k}")
    half = k // 2
    fabric_rate = rate_bps / inter_switch_slowdown

    core = [topo.add_switch(f"core_{i}") for i in range(half * half)]
    for pod in range(k):
        edges = [topo.add_switch(f"edge_{pod}_{i}") for i in range(half)]
        aggs = [topo.add_switch(f"agg_{pod}_{i}") for i in range(half)]
        # Hosts: k/2 per edge switch.
        for e_idx, edge in enumerate(edges):
            for h in range(half):
                host = topo.add_host(f"host_{pod * half * half + e_idx * half + h}")
                topo.add_link(host, edge, rate_bps, delay_s)
        # Edge <-> aggregation: full bipartite within the pod.
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg, fabric_rate, delay_s)
        # Aggregation <-> core: agg i connects to core group i.
        for a_idx, agg in enumerate(aggs):
            for c in range(half):
                topo.add_link(agg, core[a_idx * half + c], fabric_rate, delay_s)

    topo.validate()
    return topo


def fat_tree_stats(k: int) -> dict[str, int]:
    """Closed-form size of a K-ary fat-tree (used by tests)."""
    half = k // 2
    return {
        "hosts": k * half * half,
        "edge_switches": k * half,
        "agg_switches": k * half,
        "core_switches": half * half,
        "switches": 2 * k * half + half * half,
        "links": k * half * half + k * half * half + k * half * half,
        "diameter": 6,
    }
