"""Topology descriptions.

A :class:`Topology` is a plain description — node names plus links with
rates and delays — that :class:`repro.net.network.Network` turns into live
simulation objects.  Keeping it declarative makes topologies easy to test
(counts, degrees, diameters) without running anything.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["LinkSpec", "Topology"]


@dataclass(frozen=True)
class LinkSpec:
    """A full-duplex link between two named nodes."""

    node_a: str
    node_b: str
    rate_bps: float
    delay_s: float

    def endpoints(self) -> tuple[str, str]:
        return (self.node_a, self.node_b)


@dataclass
class Topology:
    """Named hosts, named switches, and the links among them."""

    name: str
    hosts: list[str] = field(default_factory=list)
    switches: list[str] = field(default_factory=list)
    links: list[LinkSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> str:
        self.hosts.append(name)
        return name

    def add_switch(self, name: str) -> str:
        self.switches.append(name)
        return name

    def add_link(self, node_a: str, node_b: str, rate_bps: float, delay_s: float) -> None:
        self.links.append(LinkSpec(node_a, node_b, rate_bps, delay_s))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_names(self) -> list[str]:
        return list(self.hosts) + list(self.switches)

    def is_host(self, name: str) -> bool:
        return name in set(self.hosts)

    def adjacency(self) -> dict[str, list[str]]:
        """Neighbor lists over all nodes."""
        adj: dict[str, list[str]] = {name: [] for name in self.node_names()}
        for link in self.links:
            adj[link.node_a].append(link.node_b)
            adj[link.node_b].append(link.node_a)
        return adj

    def switch_adjacency(self) -> dict[str, list[str]]:
        """Neighbor lists restricted to the switch fabric."""
        hosts = set(self.hosts)
        adj: dict[str, list[str]] = {name: [] for name in self.switches}
        for link in self.links:
            if link.node_a in hosts or link.node_b in hosts:
                continue
            adj[link.node_a].append(link.node_b)
            adj[link.node_b].append(link.node_a)
        return adj

    def degree(self, name: str) -> int:
        return sum(1 for link in self.links if name in link.endpoints())

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems (duplicate names,
        links to unknown nodes, disconnected fabric, multi-homed hosts)."""
        names = self.node_names()
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in topology {self.name!r}")
        known = set(names)
        for link in self.links:
            for end in link.endpoints():
                if end not in known:
                    raise ValueError(f"link references unknown node {end!r}")
            if link.node_a == link.node_b:
                raise ValueError(f"self-loop on {link.node_a!r}")
        for host in self.hosts:
            if self.degree(host) != 1:
                raise ValueError(f"host {host!r} must have exactly one link, has {self.degree(host)}")
        if self.hosts and len(self._reachable(self.hosts[0])) != len(names):
            raise ValueError(f"topology {self.name!r} is not connected")

    def _reachable(self, start: str) -> set[str]:
        adj = self.adjacency()
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for nbr in adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen

    def diameter(self) -> int:
        """Hop diameter over all node pairs (BFS from every node)."""
        adj = self.adjacency()
        best = 0
        for start in self.node_names():
            dist = {start: 0}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in adj[node]:
                    if nbr not in dist:
                        dist[nbr] = dist[node] + 1
                        frontier.append(nbr)
            best = max(best, max(dist.values()))
        return best
