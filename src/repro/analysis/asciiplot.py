"""ASCII charts for terminal-only environments.

The paper's figures are line plots and CDFs; with no plotting stack
available offline, these helpers render both as fixed-width text.  Used by
the examples and handy in notebooks/CI logs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["bar_chart", "line_plot", "cdf_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line mini chart: ``sparkline([0, 5, 10])`` -> ``▁▄█``."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with labels and values."""
    if not data:
        return f"{title}\n(no data)" if title else "(no data)"
    label_width = max(len(str(k)) for k in data)
    peak = max(data.values())
    lines = [title] if title else []
    for label, value in data.items():
        bar = "#" * (int(value / peak * width) if peak > 0 else 0)
        lines.append(f"{str(label):<{label_width}} |{bar:<{width}}| {value:.3g}{unit}")
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
) -> str:
    """Multi-series scatter/line plot on a character canvas.

    Each series gets a distinct glyph; points are (x, y) pairs.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    glyphs = "*o+x@%&"
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        legend.append(f"{glyph} {name}")
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = glyph

    lines = [title] if title else []
    lines.append(f"y: {y_lo:.3g} .. {y_hi:.3g}")
    for row in canvas:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x_lo:.3g} .. {x_hi:.3g}    {'   '.join(legend)}")
    return "\n".join(lines)


def cdf_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 15,
    title: Optional[str] = None,
) -> str:
    """Render empirical CDFs of one or more sample sets."""
    cdf_series = {}
    for name, samples in series.items():
        data = sorted(samples)
        n = len(data)
        if n == 0:
            continue
        cdf_series[name] = [(v, (i + 1) / n) for i, v in enumerate(data)]
    return line_plot(cdf_series, width=width, height=height, title=title)
