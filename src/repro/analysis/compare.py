"""Cross-run comparison helpers.

The paper's claims are *relative* ("reduces 99th percentile QCT by up to
85%", "very little impact on other traffic"); these helpers compute those
relative statements from pairs of :class:`ExperimentResult`, so benches and
EXPERIMENTS.md can report them mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import ExperimentResult

__all__ = ["Comparison", "compare", "improvement_pct"]


def improvement_pct(baseline: Optional[float], treated: Optional[float]) -> Optional[float]:
    """Percentage reduction from baseline to treated (positive = better)."""
    if baseline is None or treated is None or baseline == 0:
        return None
    return (baseline - treated) / baseline * 100.0


@dataclass(frozen=True)
class Comparison:
    """DIBS-vs-baseline deltas for one operating point."""

    baseline_scheme: str
    treated_scheme: str
    qct_p99_improvement_pct: Optional[float]
    bg_fct_p99_delta_ms: Optional[float]
    drops_baseline: int
    drops_treated: int
    detours_treated: int

    def headline(self) -> str:
        """The paper-style one-liner."""
        parts = []
        if self.qct_p99_improvement_pct is not None:
            parts.append(
                f"{self.treated_scheme} changes 99th-pct QCT by "
                f"{self.qct_p99_improvement_pct:+.0f}% vs {self.baseline_scheme}"
            )
        if self.bg_fct_p99_delta_ms is not None:
            parts.append(f"background FCT p99 moves {self.bg_fct_p99_delta_ms:+.2f} ms")
        parts.append(f"drops {self.drops_baseline} -> {self.drops_treated}")
        return "; ".join(parts)


def compare(baseline: "ExperimentResult", treated: "ExperimentResult") -> Comparison:
    """Compute the relative story between two runs of the same workload."""
    delta_fct = None
    if baseline.bg_fct_p99_ms is not None and treated.bg_fct_p99_ms is not None:
        delta_fct = treated.bg_fct_p99_ms - baseline.bg_fct_p99_ms
    return Comparison(
        baseline_scheme=baseline.scenario.scheme,
        treated_scheme=treated.scenario.scheme,
        qct_p99_improvement_pct=improvement_pct(baseline.qct_p99_ms, treated.qct_p99_ms),
        bg_fct_p99_delta_ms=delta_fct,
        drops_baseline=baseline.total_drops,
        drops_treated=treated.total_drops,
        detours_treated=treated.detours,
    )
