"""Post-run analysis: comparisons and terminal charts."""

from repro.analysis.asciiplot import bar_chart, cdf_plot, line_plot, sparkline
from repro.analysis.compare import Comparison, compare, improvement_pct

__all__ = [
    "bar_chart",
    "cdf_plot",
    "line_plot",
    "sparkline",
    "Comparison",
    "compare",
    "improvement_pct",
]
