"""Actuator interface: the write side of the control loop.

:class:`Actuators` is the only component that mutates live network state
on the controller's behalf.  It caches the target objects (the ECN-capable
queues behind up ports) and invalidates that cache on every topology
generation change — fault transitions (``Port.set_down()`` killing
in-flight packets, fault-filtered FIB views) bump
``Network.topology_generation`` through the injector, so a retune can
never land on a cached queue list that predates the fault.  Applying a
retune also re-checks ``port.up`` live, covering direct ``set_down()``
calls that bypass the injector.

The detour enable/disable actuator routes through
``Switch.set_detour_enabled``, which reuses the fault-transition
invalidation path (``refresh_fault_state``): the ECMP memo is cleared on
controller-driven detour toggles exactly as it is for fault events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.queues import DynamicBufferQueue, EcnQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.switch import Switch

__all__ = ["Actuators"]


class Actuators:
    """Apply controller decisions to switches, queues, and transports."""

    def __init__(self, network: "Network", transport: Optional[object] = None) -> None:
        self.network = network
        # The shared transport config driving workload flows (optional;
        # only used to *read* the configured TTL for telemetry).
        self.transport = transport
        self._generation = -1
        self._ecn_queues: list = []
        self._refresh()

    # ------------------------------------------------------------------
    # cache maintenance (satellite: fault transitions invalidate us)
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Rebuild cached actuation targets if the topology generation
        moved (any fault transition or FIB reinstall bumps it)."""
        gen = self.network.topology_generation
        if gen == self._generation:
            return
        self._generation = gen
        queues = []
        for switch in self.network.switches:
            for port in switch.ports:
                if not port.up:
                    continue
                queue = port.queue
                if isinstance(queue, EcnQueue) or (
                    isinstance(queue, DynamicBufferQueue)
                    and queue.mark_threshold_pkts is not None
                ):
                    queues.append((port, queue))
        self._ecn_queues = queues

    @property
    def cached_generation(self) -> int:
        """Topology generation the current cache was built against
        (introspection for tests and the invalidation audit)."""
        return self._generation

    # ------------------------------------------------------------------
    # knob reads (initial values for the controller's baselines)
    # ------------------------------------------------------------------
    def current_ecn_threshold(self) -> Optional[int]:
        self._refresh()
        if not self._ecn_queues:
            return None
        return self._ecn_queues[0][1].mark_threshold_pkts

    def current_detour_cap(self) -> int:
        return self.network.dibs.max_detours_per_packet

    def current_dba_alpha(self) -> Optional[float]:
        pools = self.network._dba_pools
        if not pools:
            return None
        return next(iter(pools.values())).alpha

    # ------------------------------------------------------------------
    # knob writes
    # ------------------------------------------------------------------
    def set_ecn_threshold(self, pkts: int) -> int:
        """Retune the ECN mark threshold on every live ECN-capable switch
        queue.  Returns how many queues were touched (0 when the scheme
        has no ECN queues — the actuator degrades to a no-op)."""
        if pkts < 1:
            raise ValueError("ECN threshold must be positive")
        self._refresh()
        touched = 0
        for port, queue in self._ecn_queues:
            if not port.up:  # fault landed since the cache was built
                continue
            queue.mark_threshold_pkts = pkts
            touched += 1
        return touched

    def set_detour_cap(self, cap: int) -> None:
        """Retune the per-packet detour budget (0 = unlimited).  The
        DibsConfig object is shared by every switch, so one write reaches
        the whole fabric."""
        if cap < 0:
            raise ValueError("detour cap cannot be negative")
        self.network.dibs.max_detours_per_packet = cap

    def set_dba_alpha(self, alpha: float) -> int:
        """Retune the DBA dynamic threshold on every shared buffer pool.
        Returns the number of pools touched."""
        if alpha <= 0:
            raise ValueError("DBA alpha must be positive")
        pools = self.network._dba_pools
        for pool in pools.values():
            pool.alpha = alpha
        return len(pools)

    def set_detour_enabled(self, switch: "Switch", enabled: bool) -> None:
        """Enable/disable detouring on one switch (the circuit breaker's
        lever).  Goes through the switch's own fault-invalidation path so
        the ECMP memo and hot-path specialization stay coherent."""
        switch.set_detour_enabled(enabled)
