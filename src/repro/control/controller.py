"""The closed-loop runtime controller.

One :class:`RuntimeController` per run.  It registers a scheduler
run-loop hook (event-count cadence — never a scheduled event, so the
event calendar is byte-identical with the controller installed or not
*until the first actuation*), and on every tick:

1. snapshots ``Network.counters()`` and computes windowed deltas —
   per-switch detour rate, fabric-wide drop rate — plus two gauges read
   directly off the switches: hottest-switch buffer occupancy and a
   queueing-delay RTT proxy;
2. runs the per-switch detour-storm circuit breaker: a switch whose
   windowed detour rate explodes has detouring disabled (fall back to
   drop) for ``cooldown_s`` simulated seconds, then re-armed;
3. retunes the global mitigation knobs (ECN mark threshold, detour
   budget, DBA alpha) through :class:`~repro.control.actuators.Actuators`
   with hysteresis (tighten above the high watermark, relax below the
   low one, hold in the dead band) and a per-knob rate limit.

Every input is a counter delta or the simulated clock; every random-free
decision is a pure function of those.  Controlled runs therefore stay
bit-identical serial vs parallel, across both engines, and across
``--resume`` replays.

Counters are exported under the ``controller`` scope of
``Network.counters()`` (so traces and telemetry capture retunes and
degraded-mode windows) and summarized into
``ExperimentResult.controller_stats``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.control.actuators import Actuators
from repro.control.spec import ControllerSpec
from repro.net.packet import MTU_BYTES

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["RuntimeController"]

# Switch-pipeline drop reasons summed into the windowed drop rate.
_DROP_KEYS = (
    "drops_overflow",
    "drops_ttl",
    "drops_no_route",
    "drops_no_detour",
    "drops_switch_failed",
)


class _BreakerState:
    """Per-switch circuit-breaker window and trip state."""

    __slots__ = ("prev_forwards", "prev_detours", "tripped", "rearm_at")

    def __init__(self) -> None:
        self.prev_forwards = 0
        self.prev_detours = 0
        self.tripped = False
        self.rearm_at = 0.0


class RuntimeController:
    """Watches telemetry, retunes mitigation knobs, fails DIBS soft."""

    def __init__(
        self,
        network: "Network",
        spec: Optional[ControllerSpec] = None,
        transport: Optional[object] = None,
    ) -> None:
        self.network = network
        self.spec = spec if spec is not None else ControllerSpec()
        self.spec.validate()
        self.actuators = Actuators(network, transport=transport)

        # Cumulative decision counters (exported into controller_stats).
        self.ticks = 0
        self.breaker_trips = 0
        self.breaker_rearms = 0
        self.degraded_ticks = 0  # tick x switch spent in degraded mode
        self.retunes_ecn = 0
        self.retunes_detour_cap = 0
        self.retunes_alpha = 0

        # Knob state: live values plus install-time baselines (the
        # relaxation ceiling).
        self._ecn_baseline = self.actuators.current_ecn_threshold()
        self._ecn_current = self._ecn_baseline
        self._cap_baseline = self.actuators.current_detour_cap()
        self._cap_current = self._cap_baseline
        self._alpha_baseline = self.actuators.current_dba_alpha()
        self._alpha_current = self._alpha_baseline
        self._last_retune = {"ecn": -1e18, "cap": -1e18, "alpha": -1e18}

        # Fabric-wide window baselines.
        self._prev_forwards = 0
        self._prev_drops = 0

        # Last-computed gauges (telemetry only; decisions never read them
        # back).
        self._occupancy_milli = 0
        self._queue_delay_proxy_us = 0

        self._breakers = {sw.name: _BreakerState() for sw in network.switches}
        self._hook_handle = None
        # Optional repro.obs.forensics.FlightRecorder: a breaker trip is an
        # anomaly worth a flight dump (the ring shows the detour storm that
        # caused it).
        self.recorder = None

    # ------------------------------------------------------------------
    def install(self) -> "RuntimeController":
        """Attach the run-loop hook and the ``controller`` counter scope,
        and prime the counter windows (call once, before ``network.run``)."""
        if self._hook_handle is not None:
            raise RuntimeError("controller already installed")
        self._prime_windows()
        self._hook_handle = self.network.scheduler.add_hook(
            self._tick, self.spec.cadence_events
        )
        self.network.counter_registry.register("controller", self.counters_dict)
        return self

    def _prime_windows(self) -> None:
        snapshot = self.network.counters()
        self._prev_forwards = snapshot.total("forwards", "switch.")
        self._prev_drops = self._switch_drops(snapshot)
        for switch in self.network.switches:
            state = self._breakers[switch.name]
            scope = snapshot.scopes.get(f"switch.{switch.name}", {})
            state.prev_forwards = scope.get("forwards", 0)
            state.prev_detours = scope.get("detours", 0)

    @staticmethod
    def _switch_drops(snapshot) -> int:
        total = 0
        for scope, counters in snapshot.scopes.items():
            if not scope.startswith("switch.") or "." in scope[len("switch."):]:
                continue
            for key in _DROP_KEYS:
                total += counters.get(key, 0)
        return total

    # ------------------------------------------------------------------
    # the control loop body (one run-loop hook invocation)
    # ------------------------------------------------------------------
    def _tick(self, scheduler) -> None:
        self.ticks += 1
        now = scheduler.now
        spec = self.spec
        snapshot = self.network.counters()

        # --- per-switch detour-storm circuit breaker -------------------
        for switch in self.network.switches:
            state = self._breakers[switch.name]
            scope = snapshot.scopes.get(f"switch.{switch.name}", {})
            forwards = scope.get("forwards", 0)
            detours = scope.get("detours", 0)
            d_forwards = forwards - state.prev_forwards
            d_detours = detours - state.prev_detours
            state.prev_forwards = forwards
            state.prev_detours = detours
            if state.tripped:
                self.degraded_ticks += 1
                if now >= state.rearm_at:
                    state.tripped = False
                    self.actuators.set_detour_enabled(switch, True)
                    self.breaker_rearms += 1
            elif (
                d_detours >= spec.min_window_detours
                and d_detours > spec.detour_rate_trip * max(1, d_forwards)
            ):
                state.tripped = True
                state.rearm_at = now + spec.cooldown_s
                self.actuators.set_detour_enabled(switch, False)
                self.breaker_trips += 1
                if self.recorder is not None:
                    self.recorder.dump(
                        "breaker-trip",
                        f"{switch.name}: {d_detours} detours vs "
                        f"{d_forwards} forwards in window at t={now:.6f}s",
                    )

        # --- windowed fabric signals -----------------------------------
        forwards = snapshot.total("forwards", "switch.")
        drops = self._switch_drops(snapshot)
        d_forwards = forwards - self._prev_forwards
        d_drops = drops - self._prev_drops
        self._prev_forwards = forwards
        self._prev_drops = drops
        drop_rate = d_drops / max(1, d_forwards)

        switches = self.network.switches
        occupancy = 0.0
        queued_delay = 0.0
        ports = 0
        for switch in switches:
            fill = switch.buffer_fill_fraction()
            if fill > occupancy:
                # Hottest switch, not the mean: incast concentrates on one
                # or two switches and a fabric mean dilutes the signal.
                occupancy = fill
            for port in switch.ports:
                queued_delay += len(port.queue) * MTU_BYTES * 8.0 / port.rate_bps
                ports += 1
        # Mean per-hop queueing delay — the RTT proxy (propagation is a
        # scenario constant; queueing is the part congestion moves).
        queue_delay_proxy = queued_delay / max(1, ports)
        self._occupancy_milli = int(occupancy * 1000)
        self._queue_delay_proxy_us = int(queue_delay_proxy * 1e6)

        # --- hysteresis bands ------------------------------------------
        if drop_rate >= spec.drop_rate_high or occupancy >= spec.occupancy_high:
            self._tighten(now)
        elif drop_rate <= spec.drop_rate_low and occupancy <= spec.occupancy_low:
            self._relax(now)
        # in the dead band: hold every knob.

    # ------------------------------------------------------------------
    # knob movement (rate limited, clamped)
    # ------------------------------------------------------------------
    def _may_retune(self, knob: str, now: float) -> bool:
        return now - self._last_retune[knob] >= self.spec.min_retune_interval_s

    def _tighten(self, now: float) -> None:
        spec = self.spec
        if self._ecn_current is not None and self._may_retune("ecn", now):
            new = max(spec.ecn_min_threshold_pkts, self._ecn_current - spec.ecn_step_pkts)
            if new != self._ecn_current and self.actuators.set_ecn_threshold(new):
                self._ecn_current = new
                self.retunes_ecn += 1
                self._last_retune["ecn"] = now
        if self._may_retune("cap", now):
            cur = self._cap_current
            if cur == 0:  # unlimited: first tighten imposes the max cap
                new = spec.detour_cap_max
            else:
                new = max(spec.detour_cap_min, cur - spec.detour_cap_step)
            if new != cur:
                self.actuators.set_detour_cap(new)
                self._cap_current = new
                self.retunes_detour_cap += 1
                self._last_retune["cap"] = now
        if self._alpha_current is not None and self._may_retune("alpha", now):
            new = max(spec.dba_alpha_min, self._alpha_current - spec.dba_alpha_step)
            if new != self._alpha_current:
                self.actuators.set_dba_alpha(new)
                self._alpha_current = new
                self.retunes_alpha += 1
                self._last_retune["alpha"] = now

    def _relax(self, now: float) -> None:
        spec = self.spec
        if (
            self._ecn_current is not None
            and self._ecn_current < self._ecn_baseline
            and self._may_retune("ecn", now)
        ):
            new = min(self._ecn_baseline, self._ecn_current + spec.ecn_step_pkts)
            if self.actuators.set_ecn_threshold(new):
                self._ecn_current = new
                self.retunes_ecn += 1
                self._last_retune["ecn"] = now
        if self._cap_current != self._cap_baseline and self._may_retune("cap", now):
            cur = self._cap_current
            if self._cap_baseline == 0:
                # Step back up; past the max cap the budget goes unlimited
                # again (the baseline).
                new = cur + spec.detour_cap_step
                if new > spec.detour_cap_max:
                    new = 0
            else:
                new = min(self._cap_baseline, cur + spec.detour_cap_step)
            self.actuators.set_detour_cap(new)
            self._cap_current = new
            self.retunes_detour_cap += 1
            self._last_retune["cap"] = now
        if (
            self._alpha_current is not None
            and self._alpha_current < self._alpha_baseline
            and self._may_retune("alpha", now)
        ):
            new = min(self._alpha_baseline, self._alpha_current + spec.dba_alpha_step)
            self.actuators.set_dba_alpha(new)
            self._alpha_current = new
            self.retunes_alpha += 1
            self._last_retune["alpha"] = now

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def degraded_now(self) -> int:
        """Switches currently running with detouring breaker-disabled."""
        return sum(1 for state in self._breakers.values() if state.tripped)

    def counters_dict(self) -> dict[str, int]:
        """The ``controller`` counter scope: cumulative decision counters
        plus instantaneous knob/signal gauges, so traces and counter
        snapshots capture every retune and degraded window."""
        counters = self.stats_dict()
        counters.update(
            degraded_now=self.degraded_now,
            occupancy_milli=self._occupancy_milli,
            queue_delay_proxy_us=self._queue_delay_proxy_us,
            ecn_threshold_pkts=self._ecn_current if self._ecn_current is not None else 0,
            detour_cap=self._cap_current,
            dba_alpha_milli=(
                int(self._alpha_current * 1000) if self._alpha_current is not None else 0
            ),
        )
        return counters

    def heartbeat_dict(self) -> dict:
        """Live control-plane state for :class:`repro.obs.heartbeat.SimHeartbeat`
        records: current knob values and which switches are breaker-tripped."""
        return {
            "ecn_threshold_pkts": self._ecn_current,
            "detour_cap": self._cap_current,
            "dba_alpha": self._alpha_current,
            "degraded_now": self.degraded_now,
            "breakers_tripped": sorted(
                name for name, state in self._breakers.items() if state.tripped
            ),
        }

    def stats_dict(self) -> dict[str, int]:
        """Cumulative counters only (safe to sum across pooled seeds);
        this is what lands in ``ExperimentResult.controller_stats``."""
        return {
            "ticks": self.ticks,
            "breaker_trips": self.breaker_trips,
            "breaker_rearms": self.breaker_rearms,
            "degraded_ticks": self.degraded_ticks,
            "retunes_ecn": self.retunes_ecn,
            "retunes_detour_cap": self.retunes_detour_cap,
            "retunes_alpha": self.retunes_alpha,
            "retunes_total": self.retunes_ecn + self.retunes_detour_cap + self.retunes_alpha,
        }
