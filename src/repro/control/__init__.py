"""Closed-loop runtime control (ROADMAP item 5, wanctl-style).

The simulator's mitigation knobs — the ECN marking threshold, the DBA
dynamic-threshold ``alpha``, the per-packet detour budget — are static
per-scenario configuration everywhere else in the tree.  This package
closes the loop at runtime: :class:`RuntimeController` rides the
scheduler's run-loop hooks, reads windowed deltas out of
``Network.counters()`` snapshots, and retunes those knobs live through
:class:`Actuators`, with hysteresis and per-knob rate limiting so the
loop itself cannot thrash.

It also carries DIBS's graceful-degradation guard: a per-switch
detour-storm circuit breaker that temporarily disables detouring (fall
back to plain drop) when the windowed detour rate explodes, re-arming
after a cooldown.  Every decision derives from counters plus simulated
time — never wall clock — so controlled runs stay bit-identical across
engines, worker processes, and ``--resume`` replays.
"""

from repro.control.actuators import Actuators
from repro.control.controller import RuntimeController
from repro.control.spec import ControllerSpec

__all__ = ["Actuators", "ControllerSpec", "RuntimeController"]
