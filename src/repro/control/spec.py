"""Controller configuration.

A :class:`ControllerSpec` is the complete policy of the runtime
controller: how often it wakes up, the watermarks of its hysteresis
bands, the circuit-breaker trip condition, and the bounds/steps of every
actuated knob.  Scenarios carry the spec as a *canonical JSON string*
(``Scenario.controller_spec``) so the frozen dataclass round-trips
through ``asdict`` → JSON → ``Scenario(**fields)`` unchanged — the same
invariant every other scenario field honours for the journal hash and
the worker-process boundary.

Hysteresis layout (see docs/INTERNALS.md): every windowed signal has a
*high* and a *low* watermark with a dead band between them.  The
controller tightens only above high, relaxes only below low, and holds
inside the band, so a signal hovering near one threshold cannot make the
loop oscillate.  Rate limiting (``min_retune_interval_s`` of simulated
time per knob) bounds the retune frequency even when a signal swings
across the whole band every window.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Optional

__all__ = ["ControllerSpec"]


@dataclass(frozen=True)
class ControllerSpec:
    """Policy knobs of the closed control loop (all simulated-time/event
    units; nothing here reads a wall clock)."""

    # Run-loop hook cadence: one controller tick per this many processed
    # events.  Event-count cadence never perturbs the event calendar, and
    # the dispatched-event stream is identical under both engines, so the
    # tick times are deterministic.
    cadence_events: int = 2_000

    # --- detour-storm circuit breaker (per switch) ---------------------
    # Trip when, within one window, detours exceed ``detour_rate_trip`` of
    # forwards AND at least ``min_window_detours`` detours happened (the
    # floor keeps a two-packet blip at startup from tripping anything).
    detour_rate_trip: float = 0.25
    min_window_detours: int = 30
    # Simulated seconds of degraded (detours-off) operation before re-arm.
    cooldown_s: float = 0.050

    # --- hysteresis watermarks ----------------------------------------
    # Windowed drop rate = switch drops / forwards over one window.
    drop_rate_high: float = 0.02
    drop_rate_low: float = 0.002
    # Hottest-switch buffer occupancy (fill fraction) at tick time — the
    # max over switches, not the mean: incast concentrates on one or two
    # switches and a fabric-wide mean dilutes exactly the signal the
    # controller needs to act on.
    occupancy_high: float = 0.25
    occupancy_low: float = 0.08
    # Per-knob rate limit in simulated seconds.
    min_retune_interval_s: float = 0.010

    # --- ECN mark threshold actuator ----------------------------------
    ecn_min_threshold_pkts: int = 2
    ecn_step_pkts: int = 2

    # --- detour budget ("detour TTL") actuator ------------------------
    # DibsConfig.max_detours_per_packet: 0 means unlimited (the paper's
    # configuration).  Tightening an unlimited budget first imposes
    # ``detour_cap_max``, then steps down toward ``detour_cap_min``.
    detour_cap_min: int = 8
    detour_cap_max: int = 64
    detour_cap_step: int = 8

    # --- DBA alpha actuator -------------------------------------------
    dba_alpha_min: float = 0.25
    dba_alpha_step: float = 0.25

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.cadence_events < 1:
            raise ValueError("cadence_events must be at least 1")
        if not (0.0 < self.detour_rate_trip <= 1.0):
            raise ValueError("detour_rate_trip must be in (0, 1]")
        if self.min_window_detours < 1:
            raise ValueError("min_window_detours must be at least 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if not (0.0 <= self.drop_rate_low < self.drop_rate_high):
            raise ValueError("need 0 <= drop_rate_low < drop_rate_high")
        if not (0.0 <= self.occupancy_low < self.occupancy_high):
            raise ValueError("need 0 <= occupancy_low < occupancy_high")
        if self.min_retune_interval_s < 0:
            raise ValueError("min_retune_interval_s cannot be negative")
        if self.ecn_min_threshold_pkts < 1 or self.ecn_step_pkts < 1:
            raise ValueError("ECN threshold bounds must be positive")
        if not (0 < self.detour_cap_min <= self.detour_cap_max):
            raise ValueError("need 0 < detour_cap_min <= detour_cap_max")
        if self.detour_cap_step < 1:
            raise ValueError("detour_cap_step must be positive")
        if not (0.0 < self.dba_alpha_min):
            raise ValueError("dba_alpha_min must be positive")
        if self.dba_alpha_step <= 0:
            raise ValueError("dba_alpha_step must be positive")

    # ------------------------------------------------------------------
    # JSON round trip (the Scenario.controller_spec wire format)
    # ------------------------------------------------------------------
    @classmethod
    def from_json_text(cls, text: Optional[str]) -> "ControllerSpec":
        """Parse a spec from JSON text; ``None``/empty gives the defaults.

        Unknown keys are an error (a typoed knob silently running the
        defaults is the worst possible failure mode for a sweep)."""
        if not text:
            spec = cls()
        else:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"controller spec is not valid JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ValueError("controller spec must be a JSON object")
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(payload) - known)
            if unknown:
                raise ValueError(
                    f"unknown controller spec keys: {unknown}; known: {sorted(known)}"
                )
            spec = cls(**payload)
        spec.validate()
        return spec

    def to_json_text(self) -> str:
        """Canonical (sorted, compact) JSON — stable under round trips, so
        the scenario journal hash does not depend on key order."""
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
