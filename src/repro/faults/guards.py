"""Periodic in-run invariant checks.

End-of-run audits (:mod:`repro.net.audit`) catch that something went wrong;
they cannot say *when*.  :class:`InvariantChecker` re-runs the cheap global
invariants at a fixed simulated-time cadence during the run, so a violation
aborts within one check interval of the corrupting event — with the
simulated timestamp in the error — instead of surfacing as an inscrutable
end-of-run discrepancy.

Checked invariants:

* every port queue has non-negative byte occupancy and no more packets than
  its capacity,
* every shared DBA buffer pool satisfies ``0 <= used_bytes <= total_bytes``
  and ``used_bytes`` equals the sum of its member queues' byte counts,
* packet conservation: created = delivered + unclaimed + misdelivered +
  dropped + parked + in-flight (the ledger is exact at any simulated time
  because ports track in-flight packets).

Violations raise :class:`InvariantError` (a :class:`SimulationError`), which
the experiment executors record as a per-run failure rather than a sweep
crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.audit import conservation_report
from repro.net.queues import INFINITE_CAPACITY
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["InvariantError", "InvariantChecker"]


class InvariantError(SimulationError):
    """A runtime invariant was violated mid-run."""


class InvariantChecker:
    """Self-rescheduling invariant sweep over a network."""

    def __init__(
        self,
        network: "Network",
        interval_s: float,
        stop_at: Optional[float] = None,
        recorder=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("invariant check interval must be positive")
        self.network = network
        self.interval_s = interval_s
        self.stop_at = stop_at
        # Optional repro.obs.forensics.FlightRecorder, dumped on the first
        # violation so the state leading up to it is preserved.
        self.recorder = recorder
        self.checks_run = 0

    def start(self) -> "InvariantChecker":
        """Schedule the first check one interval from now."""
        self.network.scheduler.schedule(self.interval_s, self._check)
        return self

    def _check(self) -> None:
        self.check_now()
        now = self.network.scheduler.now
        if self.stop_at is None or now + self.interval_s <= self.stop_at:
            self.network.scheduler.schedule(self.interval_s, self._check)

    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every invariant once; raise :class:`InvariantError` on the
        first violation."""
        self.checks_run += 1
        now = self.network.scheduler.now
        try:
            self._check_queues(now)
            self._check_pools(now)
            self._check_conservation(now)
        except InvariantError as exc:
            if self.recorder is not None:
                self.recorder.dump("invariant", str(exc))
            raise

    def _check_queues(self, now: float) -> None:
        for node in list(self.network.switches) + list(self.network.hosts):
            for port in node.ports:
                queue = port.queue
                if queue.byte_count < 0:
                    raise InvariantError(
                        f"t={now}: negative byte occupancy ({queue.byte_count}) "
                        f"on {node.name}[{port.index}]"
                    )
                capacity = getattr(queue, "capacity_pkts", None)
                if (
                    capacity is not None
                    and capacity != INFINITE_CAPACITY
                    and len(queue) > capacity
                ):
                    raise InvariantError(
                        f"t={now}: queue on {node.name}[{port.index}] holds "
                        f"{len(queue)} packets, capacity {capacity}"
                    )

    def _check_pools(self, now: float) -> None:
        # Group member queues by pool identity: a pool's used_bytes must
        # equal the sum of its members' occupancy, and stay within bounds.
        members: dict[int, tuple[object, int]] = {}
        for switch in self.network.switches:
            for port in switch.ports:
                pool = getattr(port.queue, "pool", None)
                if pool is None:
                    continue
                _, total = members.get(id(pool), (pool, 0))
                members[id(pool)] = (pool, total + port.queue.byte_count)
        for pool, member_bytes in members.values():
            if not 0 <= pool.used_bytes <= pool.total_bytes:
                raise InvariantError(
                    f"t={now}: shared buffer pool out of bounds: "
                    f"used={pool.used_bytes}, total={pool.total_bytes}"
                )
            if pool.used_bytes != member_bytes:
                raise InvariantError(
                    f"t={now}: shared buffer pool accounting skew: "
                    f"pool says {pool.used_bytes} bytes used, member queues "
                    f"hold {member_bytes}"
                )

    def _check_conservation(self, now: float) -> None:
        report = conservation_report(self.network)
        if report.leaked != 0:
            raise InvariantError(
                f"t={now}: packet conservation violated "
                f"(leaked={report.leaked}): {report.as_dict()}"
            )
