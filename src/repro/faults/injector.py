"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a live network.

The injector is armed once, before the simulation starts: every fault event
becomes an ordinary scheduler event, so faults interleave with traffic in
deterministic FIFO order and the same schedule + seed replays identically in
the serial and parallel executors.

What each kind does at apply time:

* ``link_down`` — both directions of the link go down (new sends rejected,
  in-flight packets killed; all recorded as ``link_down`` drops) and both
  endpoint switches rebuild their fault-filtered FIBs / drop the link from
  the DIBS detour mask.
* ``link_up`` — both directions come back, parked queues resume draining,
  and the endpoint FIBs are restored.
* ``switch_fail`` — the switch stops forwarding (``switch_failed`` drops)
  and every attached link goes down in both directions; neighbors route and
  detour around it.
* ``switch_recover`` — the reverse.
* ``packet_corrupt`` — the next ``count`` deliveries on the ``a -> b``
  direction are discarded as CRC failures (``corrupt`` drops).

Transports never see a special signal: every fault manifests as packet loss
(or an ECMP/detour mask change), exactly as in a real data center.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults.schedule import (
    LINK_DOWN,
    LINK_UP,
    PACKET_CORRUPT,
    SWITCH_FAIL,
    SWITCH_RECOVER,
    FaultEvent,
    FaultSchedule,
)
from repro.net.switch import Switch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["FaultInjector", "install_faults"]


class FaultInjector:
    """Schedules and applies a fault schedule against one network.

    ``reroute=True`` (default) models idealized routing reconvergence:
    every topology-changing transition recomputes all-shortest-path FIBs on
    the live topology, so surviving paths carry traffic around the failure.
    With ``reroute=False`` only the local fault filters apply — switches
    adjacent to the failure stop using dead ports, but distant switches
    keep forwarding into the black hole (``no_route`` drops at the rim).
    """

    def __init__(
        self, network: "Network", schedule: FaultSchedule, reroute: bool = True
    ) -> None:
        self.network = network
        self.schedule = schedule
        self.reroute = reroute
        # Counters exported into ExperimentResult.faults_applied.
        self.applied: dict[str, int] = {}
        self.packets_killed = 0
        # (time, kind, node_a, node_b) application log, in apply order.
        self.log: list[tuple[float, str, str, str]] = []
        self._armed = False

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Fail fast on schedules that name unknown nodes or links."""
        for ev in self.schedule:
            try:
                node_a = self.network.node(ev.node_a)
            except KeyError:
                raise ValueError(f"fault at t={ev.time} names unknown node {ev.node_a!r}")
            if ev.kind in (SWITCH_FAIL, SWITCH_RECOVER):
                if not isinstance(node_a, Switch):
                    raise ValueError(
                        f"fault at t={ev.time}: {ev.kind} target {ev.node_a!r} is not a switch"
                    )
                continue
            try:
                self.network.port_between(ev.node_a, ev.node_b)
            except KeyError:
                raise ValueError(
                    f"fault at t={ev.time} names nonexistent link "
                    f"{ev.node_a!r} <-> {ev.node_b!r}"
                )

    def arm(self) -> "FaultInjector":
        """Validate the schedule and register every event on the scheduler."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self.validate()
        scheduler = self.network.scheduler
        for ev in self.schedule:
            scheduler.schedule_at(ev.time, self._apply, ev)
        self._armed = True
        return self

    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        if ev.kind == LINK_DOWN:
            self._set_link(ev.node_a, ev.node_b, up=False)
        elif ev.kind == LINK_UP:
            self._set_link(ev.node_a, ev.node_b, up=True)
        elif ev.kind == SWITCH_FAIL:
            self._set_switch(ev.node_a, failed=True)
        elif ev.kind == SWITCH_RECOVER:
            self._set_switch(ev.node_a, failed=False)
        elif ev.kind == PACKET_CORRUPT:
            self.network.port_between(ev.node_a, ev.node_b).corrupt_next += ev.count
        self.applied[ev.kind] = self.applied.get(ev.kind, 0) + 1
        self.log.append((self.network.scheduler.now, ev.kind, ev.node_a, ev.node_b))
        self.network.collector.fault_events.append(
            (self.network.scheduler.now, ev.kind, ev.node_a, ev.node_b)
        )

    def _set_link(self, name_a: str, name_b: str, up: bool) -> None:
        for tx, _rx in ((name_a, name_b), (name_b, name_a)):
            port = self.network.port_between(tx, _rx)
            if up:
                port.set_up()
            else:
                self.packets_killed += port.set_down()
        if self.reroute:
            self.network.recompute_routes()
        else:
            for name in (name_a, name_b):
                node = self.network.node(name)
                if isinstance(node, Switch):
                    node.refresh_fault_state()
            # recompute_routes() bumps the topology generation itself (via
            # the FIB install); the local-filter path must do it explicitly
            # so controller actuator caches still invalidate.
            self.network.note_topology_change()

    def _set_switch(self, name: str, failed: bool) -> None:
        switch = self.network.switch(name)
        switch.failed = failed
        touched: list[Switch] = [switch]
        for port in switch.ports:
            peer = port.peer_node
            if peer is None:
                continue
            reverse = peer.ports[port.peer_port_index]
            if failed:
                self.packets_killed += port.set_down()
                self.packets_killed += reverse.set_down()
            else:
                port.set_up()
                reverse.set_up()
            if isinstance(peer, Switch):
                touched.append(peer)
        if self.reroute:
            self.network.recompute_routes()
        else:
            for sw in touched:
                sw.refresh_fault_state()
            self.network.note_topology_change()


def install_faults(network: "Network", scenario) -> Optional[FaultInjector]:
    """Build and arm the injector a scenario asks for; ``None`` if fault-free.

    The combined schedule is the scenario's explicit ``faults`` rows plus
    generated Poisson link flaps (``link_flap_rate`` per fabric link) and
    uniform corruption events (``corrupt_rate`` network-wide), each drawn
    from its own named RNG stream so the schedule is a pure function of the
    scenario + seed.  ``scenario`` is duck-typed: any object with the
    optional attributes works (dicts crossing the worker-process boundary
    are rebuilt into Scenario before reaching here).
    """
    schedule = FaultSchedule()
    explicit = getattr(scenario, "faults", None)
    if explicit:
        schedule = schedule.merged(FaultSchedule.from_tuples(explicit))
    duration_s = float(getattr(scenario, "duration_s", 0.0))
    flap_rate = float(getattr(scenario, "link_flap_rate", 0.0) or 0.0)
    if flap_rate > 0.0:
        schedule = schedule.merged(
            FaultSchedule.poisson_link_flaps(
                network.fabric_links(),
                flap_rate,
                duration_s,
                network.rngs.stream("faults.flaps"),
                downtime_s=float(getattr(scenario, "link_flap_downtime_s", 1e-3)),
            )
        )
    corrupt_rate = float(getattr(scenario, "corrupt_rate", 0.0) or 0.0)
    if corrupt_rate > 0.0:
        schedule = schedule.merged(
            FaultSchedule.uniform_corruption(
                network.fabric_links(),
                corrupt_rate,
                duration_s,
                network.rngs.stream("faults.corrupt"),
            )
        )
    if not schedule:
        return None
    injector = FaultInjector(network, schedule).arm()
    network.fault_injector = injector
    return injector
