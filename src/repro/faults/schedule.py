"""Deterministic fault schedules.

A :class:`FaultSchedule` is a time-sorted sequence of :class:`FaultEvent`
records — the *entire* failure story of a run, fixed before the simulation
starts.  Schedules can be written by hand, loaded from a JSON spec
(``--faults spec.json``), or generated from seeded random streams
(:meth:`FaultSchedule.poisson_link_flaps`,
:meth:`FaultSchedule.uniform_corruption`).  Because generation draws from
:class:`repro.sim.rng.RngFactory` streams derived from the scenario seed,
the same scenario + seed always yields the same schedule — in-process, in a
worker process, on any platform — which is what keeps faulty runs
bit-identical between the serial and parallel executors.

Event kinds
-----------
``link_down`` / ``link_up``
    Both directions of the named link go down/up.  A down port rejects new
    sends and kills packets already propagating (recorded ``link_down``
    drops); queued packets stay parked until recovery.
``switch_fail`` / ``switch_recover``
    The switch stops forwarding (anything it is handed drops with cause
    ``switch_failed``) and every attached link — both directions — goes
    down with it.  Recovery brings the switch and all its links back.
``packet_corrupt``
    The next ``count`` packets delivered in the ``node_a -> node_b``
    direction are discarded as CRC failures (``corrupt`` drops).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "load_fault_spec",
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_FAIL",
    "SWITCH_RECOVER",
    "PACKET_CORRUPT",
    "FAULT_KINDS",
]

LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_FAIL = "switch_fail"
SWITCH_RECOVER = "switch_recover"
PACKET_CORRUPT = "packet_corrupt"

FAULT_KINDS = (LINK_DOWN, LINK_UP, SWITCH_FAIL, SWITCH_RECOVER, PACKET_CORRUPT)
_LINK_KINDS = frozenset((LINK_DOWN, LINK_UP, PACKET_CORRUPT))
_SWITCH_KINDS = frozenset((SWITCH_FAIL, SWITCH_RECOVER))


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault.

    ``node_b`` is required for link-scoped kinds and empty for
    switch-scoped ones; ``count`` is only meaningful for
    ``packet_corrupt`` (how many deliveries to corrupt).
    """

    time: float
    kind: str
    node_a: str
    node_b: str = ""
    count: int = 1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time cannot be negative: {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not self.node_a:
            raise ValueError(f"{self.kind} fault needs a node name")
        if self.kind in _LINK_KINDS and not self.node_b:
            raise ValueError(f"{self.kind} fault needs both link endpoints")
        if self.kind in _SWITCH_KINDS and self.node_b:
            raise ValueError(f"{self.kind} fault names a single switch, got two nodes")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def as_tuple(self) -> tuple:
        """Canonical plain-builtin form (what :class:`Scenario` carries)."""
        return (self.time, self.kind, self.node_a, self.node_b, self.count)


class FaultSchedule:
    """An immutable, time-sorted collection of fault events."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        # Stable sort: events at the same timestamp apply in insertion
        # order, mirroring the scheduler's FIFO tie-breaking.
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda ev: ev.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    # ------------------------------------------------------------------
    # plain-builtin round trips (Scenario fields, JSON specs)
    # ------------------------------------------------------------------
    def as_tuples(self) -> tuple[tuple, ...]:
        return tuple(ev.as_tuple() for ev in self.events)

    @classmethod
    def from_tuples(cls, rows: Iterable[Sequence]) -> "FaultSchedule":
        """Rebuild from ``as_tuples`` output (lists accepted: JSON and the
        process boundary do not preserve tuples)."""
        events = []
        for row in rows:
            row = tuple(row)
            if not 3 <= len(row) <= 5:
                raise ValueError(f"fault row needs 3-5 fields (time, kind, a[, b[, count]]): {row!r}")
            events.append(FaultEvent(*row))
        return cls(events)

    @classmethod
    def from_spec(cls, spec: Union[dict, list]) -> "FaultSchedule":
        """Parse a JSON-ish spec: ``{"events": [...]}`` or a bare list,
        with each entry either a dict (``time``, ``kind``, ``a``/``node_a``,
        ``b``/``node_b``, ``count``) or a positional row."""
        rows = spec.get("events", []) if isinstance(spec, dict) else spec
        events = []
        for row in rows:
            if isinstance(row, dict):
                events.append(
                    FaultEvent(
                        time=float(row["time"]),
                        kind=str(row["kind"]),
                        node_a=str(row.get("a", row.get("node_a", ""))),
                        node_b=str(row.get("b", row.get("node_b", ""))),
                        count=int(row.get("count", 1)),
                    )
                )
            else:
                events.append(FaultEvent(*tuple(row)))
        return cls(events)

    @classmethod
    def from_json_file(cls, path) -> "FaultSchedule":
        return cls.from_spec(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # seeded random generators
    # ------------------------------------------------------------------
    @classmethod
    def poisson_link_flaps(
        cls,
        links: Sequence[tuple[str, str]],
        rate_per_link: float,
        duration_s: float,
        rng: Random,
        downtime_s: float = 1e-3,
    ) -> "FaultSchedule":
        """Independent Poisson link flaps: each link fails at
        ``rate_per_link`` events/second and recovers ``downtime_s`` later.
        Links are visited in the order given, so the same ``rng`` state
        always produces the same schedule."""
        if rate_per_link < 0:
            raise ValueError("flap rate cannot be negative")
        if downtime_s <= 0:
            raise ValueError("flap downtime must be positive")
        events: list[FaultEvent] = []
        if rate_per_link == 0:
            return cls(events)
        for node_a, node_b in links:
            t = rng.expovariate(rate_per_link)
            while t < duration_s:
                events.append(FaultEvent(t, LINK_DOWN, node_a, node_b))
                events.append(FaultEvent(t + downtime_s, LINK_UP, node_a, node_b))
                t += downtime_s + rng.expovariate(rate_per_link)
        return cls(events)

    @classmethod
    def uniform_corruption(
        cls,
        links: Sequence[tuple[str, str]],
        events_per_s: float,
        duration_s: float,
        rng: Random,
        count: int = 1,
    ) -> "FaultSchedule":
        """Network-wide Poisson corruption: ``events_per_s`` corrupt events
        per second, each hitting a uniformly chosen link direction (the
        direction is also drawn, so both halves of a link are exposed)."""
        if events_per_s < 0:
            raise ValueError("corruption rate cannot be negative")
        events: list[FaultEvent] = []
        if events_per_s == 0 or not links:
            return cls(events)
        t = rng.expovariate(events_per_s)
        while t < duration_s:
            node_a, node_b = links[rng.randrange(len(links))]
            if rng.random() < 0.5:
                node_a, node_b = node_b, node_a
            events.append(FaultEvent(t, PACKET_CORRUPT, node_a, node_b, count))
            t += rng.expovariate(events_per_s)
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {len(self.events)} events>"


def load_fault_spec(path) -> tuple[tuple, ...]:
    """Load a JSON fault spec into the plain-tuple form a
    :class:`~repro.experiments.scenarios.Scenario` carries (used by the
    ``--faults`` CLI flag)."""
    return FaultSchedule.from_json_file(path).as_tuples()
