"""Fault injection and runtime robustness guards.

This package makes runs-under-failure first-class: deterministic fault
schedules (:mod:`repro.faults.schedule`) applied by an injector
(:mod:`repro.faults.injector`), a livelock watchdog hooked into the
scheduler's run loop (:mod:`repro.faults.watchdog`), and periodic in-run
invariant checks (:mod:`repro.faults.guards`).

The paper's robustness claim — DIBS keeps working as long as congestion is
transient — only means something if the simulator can *create* the
non-transient cases: dead core links shrinking the detour mask, crashed
switches, random link flaps, CRC corruption.  Everything here is
deterministic given the scenario seed, so faulty runs remain bit-identical
across the serial and parallel executors.
"""

from repro.faults.guards import InvariantChecker, InvariantError
from repro.faults.injector import FaultInjector, install_faults
from repro.faults.schedule import (
    FAULT_KINDS,
    LINK_DOWN,
    LINK_UP,
    PACKET_CORRUPT,
    SWITCH_FAIL,
    SWITCH_RECOVER,
    FaultEvent,
    FaultSchedule,
    load_fault_spec,
)
from repro.faults.watchdog import Watchdog
from repro.sim.engine import LivelockError

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "install_faults",
    "load_fault_spec",
    "Watchdog",
    "InvariantChecker",
    "InvariantError",
    "LivelockError",
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_FAIL",
    "SWITCH_RECOVER",
    "PACKET_CORRUPT",
    "FAULT_KINDS",
]
