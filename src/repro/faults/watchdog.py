"""Livelock watchdog.

A simulator bug (or a pathological DIBS configuration — e.g. every detour
port down, TTL effectively disabled) can put the event loop into a state
where it processes events forever without simulated time advancing, or
bounces a packet between switches indefinitely.  Both freeze wall-clock
progress while the process looks busy, which is the worst failure mode for
an unattended parameter sweep.

The watchdog catches both:

* **Stalled clock** — it hooks the scheduler's run loop (NOT a scheduled
  event: a livelock freezes simulated time, so a time-scheduled check would
  never fire) and is called every ``check_every_events`` processed events.
  If the clock has not moved across ``stall_checks`` consecutive calls, the
  run aborts with :class:`~repro.sim.engine.LivelockError`.
* **Hop explosion** — installing the watchdog tightens every switch's
  per-packet hop guard to a TTL-derived bound, so a packet circling the
  fabric raises :class:`LivelockError` at the switch that exceeds it rather
  than looping until float exhaustion.

Both checks are deterministic (event counts and hop counts, no wall-clock
reads), so a watchdog abort reproduces exactly under the same seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.engine import LivelockError, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["Watchdog", "LivelockError"]


class Watchdog:
    """Aborts a run that stops making simulated-time progress."""

    def __init__(
        self,
        scheduler: Scheduler,
        check_every_events: int = 100_000,
        stall_checks: int = 2,
        max_hops: Optional[int] = None,
        recorder=None,
    ) -> None:
        if check_every_events < 1:
            raise ValueError("check interval must be at least one event")
        if stall_checks < 1:
            raise ValueError("stall_checks must be at least 1")
        self.scheduler = scheduler
        self.check_every_events = check_every_events
        self.stall_checks = stall_checks
        self.max_hops = max_hops
        # Optional repro.obs.forensics.FlightRecorder, dumped just before a
        # livelock abort — the ring holds the packet storm that caused it.
        self.recorder = recorder
        self.checks_run = 0
        self._last_now: Optional[float] = None
        self._stalled_for = 0

    def install(self, network: Optional["Network"] = None) -> "Watchdog":
        """Attach to the scheduler's run loop; optionally arm the hop guard
        on every switch of ``network``."""
        self.scheduler.watchdog = self._tick
        self.scheduler.watchdog_interval_events = self.check_every_events
        if network is not None and self.max_hops is not None:
            for switch in network.switches:
                switch.hop_limit = self.max_hops
        return self

    def uninstall(self) -> None:
        if self.scheduler.watchdog is self._tick:
            self.scheduler.watchdog = None

    def _tick(self, scheduler: Scheduler) -> None:
        self.checks_run += 1
        now = scheduler.now
        if self._last_now is not None and now == self._last_now:
            self._stalled_for += 1
            if self._stalled_for >= self.stall_checks:
                message = (
                    f"simulated time stuck at {now!r} for "
                    f"{self._stalled_for * self.check_every_events} events — "
                    f"likely a zero-delay event cycle (livelock)"
                )
                if self.recorder is not None:
                    self.recorder.dump("watchdog-stall", message)
                raise LivelockError(message)
        else:
            self._stalled_for = 0
        self._last_now = now
