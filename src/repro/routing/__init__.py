"""Shortest-path FIB computation with ECMP next-hop sets."""

from repro.routing.fib import compute_fibs, shortest_path_lengths

__all__ = ["compute_fibs", "shortest_path_lengths"]
