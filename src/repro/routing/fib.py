"""Forwarding-table computation.

§3 of the paper assumes FIB-based forwarding (no spanning tree): each switch
holds, per destination host, the set of neighbors on shortest paths, and
picks among them with flow-level ECMP.  A centralized controller (or OSPF)
would compute the same tables; we compute them directly with one BFS per
destination host, which is exact all-shortest-path routing.

The output is symbolic (names, not ports); :mod:`repro.net.network`
translates neighbor names into port indices when it instantiates switches.
"""

from __future__ import annotations

from collections import deque

from repro.topo.base import Topology

__all__ = ["compute_fibs", "shortest_path_lengths"]


def compute_fibs(topo: Topology) -> dict[str, dict[str, list[str]]]:
    """Compute ``fib[switch][dst_host] -> sorted list of next-hop names``.

    Every entry lists *all* shortest-path next hops, so ECMP fan-out falls
    out for free.  Hosts get no FIB (they only talk to their edge switch).
    """
    adj = topo.adjacency()
    switch_names = set(topo.switches)
    fibs: dict[str, dict[str, list[str]]] = {name: {} for name in topo.switches}

    for dst in topo.hosts:
        dist = _bfs_distances(adj, dst)
        for switch in topo.switches:
            d = dist.get(switch)
            if d is None:
                continue
            next_hops = [
                nbr
                for nbr in adj[switch]
                if dist.get(nbr, -1) == d - 1 and (nbr in switch_names or nbr == dst)
            ]
            if next_hops:
                fibs[switch][dst] = sorted(next_hops)
    return fibs


def shortest_path_lengths(topo: Topology, src: str) -> dict[str, int]:
    """Hop distance from ``src`` to every reachable node (testing aid)."""
    return _bfs_distances(topo.adjacency(), src)


def _bfs_distances(adj: dict[str, list[str]], start: str) -> dict[str, int]:
    dist = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        base = dist[node]
        for nbr in adj[node]:
            if nbr not in dist:
                dist[nbr] = base + 1
                frontier.append(nbr)
    return dist
