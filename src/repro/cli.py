"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      one scenario (any scheme), print the headline metrics
``sweep``    sweep one Scenario parameter across values and schemes
``replay``   re-execute a failure replay bundle from a journal
``trace``    summarize (or filter) a structured JSONL trace file
``explain``  forensics on sampled spans: ranked FCT decomposition of the
             slowest flows + a packet's detour odyssey
``schemes``  list available schemes and the Table 1/2 defaults
``topo``     describe a topology (sizes, degrees, diameter)
``serve``    run the async job server (admission control, per-tenant
             fairness, crash retries, graceful SIGTERM drain)
``jobs``     inspect a journal directory: completed entries and failure
             replay bundles

Examples::

    python -m repro run --scheme dibs --qps 125 --seeds 0,1,2
    python -m repro serve --state-dir runs/service --workers 4 --port 8642
    python -m repro jobs runs/service
    python -m repro run --scheme dibs --profile --trace-file run.trace.jsonl
    python -m repro trace run.trace.jsonl
    python -m repro sweep --param buffer_pkts --values 5,10,25,50 \
        --schemes dctcp,dibs
    python -m repro sweep --param qps --values 40,125,250 --seeds 0,1,2 \
        --workers 4 --run-timeout 300 --journal-dir runs/qps --resume
    python -m repro replay runs/qps/failures/<hash>.bundle.json
    python -m repro topo --topology fattree --k 8

Observability flags (repro.obs) on ``run``/``sweep``: ``--profile``
buckets scheduler wall time per callback category; ``--heartbeat S``
emits progress JSONL every S wall seconds (``--heartbeat-path`` to a
file, default stderr); ``--trace-file F`` records detours, drops, path
and occupancy events as versioned JSONL readable by ``repro trace``;
``--spans`` (or ``--span-sample-rate R``) samples per-packet odyssey
spans readable by ``repro explain``; ``--flight-recorder DIR`` dumps a
ring of recent events on aborts/breaker trips; ``--timeseries-interval-s
S`` samples goodput/utilization series into the artifact bundle.
None of these perturbs the event calendar: metrics are bit-identical
with instrumentation on or off.  ``run --out-dir DIR`` writes the full
artifact bundle (CSVs, JSON, profile, trace) via
repro.metrics.export.write_artifacts.

``--workers N`` fans the (value x scheme x seed) grid out over N worker
processes (results identical to serial; see repro.experiments.parallel).
``--journal-dir DIR`` checkpoints every completed (value, scheme, seed)
cell atomically; ``--resume`` skips already-journaled cells, so an
interrupted sweep restarted with the same arguments produces bit-identical
pooled results.  Exit codes: 0 ok, 1 permanently failed runs, 130
interrupted (SIGINT/SIGTERM; partial results printed, journal flushed).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.journal import (
    RunJournal,
    load_replay_bundle,
    scenario_from_json_dict,
)
from repro.experiments.parallel import RunTelemetry
from repro.experiments.report import format_sweep, format_table
from repro.experiments.runner import run_pooled, run_scenario
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, Scenario
from repro.experiments.schemes import available_schemes, get_scheme
from repro.experiments.sweep import sweep as run_sweep

__all__ = ["main", "build_parser"]

# Conventional "terminated by SIGINT" exit status, distinct from 1 (failed
# runs) so supervisors/CI can tell an interrupted sweep from a broken one.
EXIT_INTERRUPTED = 130

_NUMERIC_FIELDS = {
    "k": int,
    "buffer_pkts": int,
    "ecn_threshold_pkts": int,
    "ttl": int,
    "incast_degree": int,
    "response_bytes": int,
    "qps": float,
    "bg_interarrival_s": float,
    "duration_s": float,
    "drain_s": float,
    "oversubscription": float,
    "seed": int,
    "link_flap_rate": float,
    "link_flap_downtime_s": float,
    "corrupt_rate": float,
    "invariant_check_interval_s": float,
    "max_pending_events": int,
    "trace_occupancy_interval_s": float,
    "span_sample_rate": float,
    "timeseries_interval_s": float,
    "link_jitter_s": float,
    "bg_diurnal_period_s": float,
    "bg_diurnal_amplitude": float,
    "link_rate_bps": float,
    "link_delay_s": float,
    "min_rto_s": float,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIBS (EuroSys 2014) reproduction: run simulated data center experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario")
    _add_scenario_args(run_p)
    run_p.add_argument("--seeds", default="0", help="comma-separated seeds to pool (default: 0)")
    run_p.add_argument("--out-dir", default=None, dest="out_dir", metavar="DIR",
                       help="write the full artifact bundle (flows/queries CSVs, "
                            "result + telemetry JSON, profile, trace) into DIR")
    _add_parallel_args(run_p)

    sweep_p = sub.add_parser("sweep", help="sweep a scenario parameter")
    _add_scenario_args(sweep_p)
    sweep_p.add_argument("--param", required=True, help="Scenario field to sweep")
    sweep_p.add_argument("--values", required=True, help="comma-separated values")
    sweep_p.add_argument("--schemes", default="dctcp,dibs", help="comma-separated schemes")
    sweep_p.add_argument("--seeds", default="0", help="comma-separated seeds to pool")
    _add_parallel_args(sweep_p)

    trace_p = sub.add_parser(
        "trace",
        help="summarize or filter a structured JSONL trace written by --trace-file",
    )
    trace_p.add_argument("file", help="path to a .trace.jsonl file")
    trace_p.add_argument("--type", default=None, dest="record_type",
                         choices=["meta", "detour", "drop", "occupancy", "path",
                                  "counters", "span"],
                         help="print matching records as JSONL instead of the summary")
    trace_p.add_argument("--limit", type=int, default=None,
                         help="stop after N records (with --type)")

    explain_p = sub.add_parser(
        "explain",
        help="reconstruct sampled packet odysseys and rank flows by "
             "tail-FCT decomposition (needs spans: run with --spans)",
    )
    explain_p.add_argument("target",
                           help="a trace/spans .jsonl file, a flight-recorder dump, "
                                "or an artifacts directory (--out-dir)")
    explain_p.add_argument("--flows", type=int, default=10, dest="flow_limit",
                           help="rows in the ranked attribution table (default: 10)")
    explain_p.add_argument("--flow", type=int, default=None, dest="flow_id",
                           help="also print the hop-by-hop odyssey of this flow's "
                                "most-detoured span (default: the slowest flow)")

    replay_p = sub.add_parser(
        "replay",
        help="re-execute a failure replay bundle written under --journal-dir",
    )
    replay_p.add_argument("bundle", help="path to a failures/<hash>.bundle.json")

    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP job server (see repro.server): journal-deduped "
             "scenario runs with admission control, per-tenant DRR fairness, "
             "crash retries, circuit breaking, and graceful SIGTERM drain",
    )
    serve_p.add_argument("--state-dir", required=True, dest="state_dir", metavar="DIR",
                         help="durable state: run journal, failures/, spool.json, "
                              "heartbeat.jsonl")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral; the bound port is "
                              "announced as a JSON line on stdout)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="simulation worker processes (default: 2)")
    serve_p.add_argument("--max-retries", type=int, default=2, dest="max_retries",
                         help="retries per job after a transient failure (default: 2)")
    serve_p.add_argument("--run-timeout", type=float, default=None, dest="run_timeout",
                         help="per-run timeout in seconds (escalates x1.5 per retry)")
    serve_p.add_argument("--rate", type=float, default=20.0, dest="rate_per_s",
                         help="sustained admission rate, jobs/second (default: 20)")
    serve_p.add_argument("--burst", type=int, default=20,
                         help="admission token-bucket burst (default: 20)")
    serve_p.add_argument("--max-queued", type=int, default=64, dest="max_queued",
                         help="hard queue-depth bound; beyond it submissions shed "
                              "with 503 + Retry-After (default: 64)")
    serve_p.add_argument("--breaker-threshold", type=int, default=3,
                         dest="breaker_threshold",
                         help="consecutive permanent failures that trip a scenario "
                              "class's circuit breaker (default: 3)")
    serve_p.add_argument("--breaker-cooldown", type=float, default=30.0,
                         dest="breaker_cooldown",
                         help="seconds an open breaker waits before half-opening "
                              "(default: 30)")
    serve_p.add_argument("--quantum", type=int, default=1,
                         help="DRR quantum: launches granted per tenant per ring "
                              "sweep (default: 1)")
    serve_p.add_argument("--heartbeat", type=float, default=5.0,
                         dest="heartbeat_interval",
                         help="seconds between heartbeat.jsonl progress records "
                              "(default: 5)")
    serve_p.add_argument("--drain-timeout", type=float, default=60.0,
                         dest="drain_timeout",
                         help="seconds SIGTERM waits for in-flight runs before "
                              "spooling them (default: 60)")

    jobs_p = sub.add_parser(
        "jobs",
        help="list a journal directory's completed entries and failure bundles",
    )
    jobs_p.add_argument("journal_dir", metavar="JOURNAL_DIR",
                        help="a --journal-dir / serve --state-dir directory")
    jobs_p.add_argument("--failures", action="store_true",
                        help="show only failure replay bundles")
    jobs_p.add_argument("--limit", type=int, default=None,
                        help="show at most N rows per section (newest first)")

    sub.add_parser("schemes", help="list schemes and defaults")

    topo_p = sub.add_parser("topo", help="describe a topology")
    topo_p.add_argument("--topology", default="fattree",
                        choices=["fattree", "testbed", "leafspine", "linear", "jellyfish"])
    topo_p.add_argument("--k", type=int, default=4)
    topo_p.add_argument("--seed", type=int, default=0)

    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    # Choices come from the live registry, so schemes registered by a
    # plugin/conftest before parser construction are accepted too.
    parser.add_argument("--scheme", default="dibs", choices=available_schemes())
    parser.add_argument("--paper-defaults", action="store_true",
                        help="start from the paper's K=8 Table 1/2 point instead of the scaled one")
    for field, cast in _NUMERIC_FIELDS.items():
        flag = "--" + field.replace("_", "-")
        parser.add_argument(flag, type=cast, default=None, dest=field)
    parser.add_argument("--no-background", action="store_true", help="disable background traffic")
    parser.add_argument("--no-query", action="store_true", help="disable query traffic")
    parser.add_argument("--detour-policy", default=None,
                        choices=["random", "load-aware", "flow-based", "probabilistic"])
    parser.add_argument("--faults", default=None, metavar="SPEC.json",
                        help="JSON fault schedule (see repro.faults.schedule) "
                             "applied to every run")
    parser.add_argument("--no-watchdog", action="store_true",
                        help="disable the livelock watchdog (on by default)")
    # Runtime control (repro.control).
    parser.add_argument("--controller", action="store_true",
                        help="install the closed-loop runtime controller "
                             "(detour-storm breaker + live retuning of the "
                             "ECN threshold, detour cap, and DBA alpha)")
    parser.add_argument("--controller-spec", default=None, dest="controller_spec",
                        metavar="SPEC.json",
                        help="JSON ControllerSpec overrides (see "
                             "repro.control.spec); implies --controller")
    parser.add_argument("--engine", default=None, choices=["calendar", "heap"],
                        help="event-scheduler implementation (default: calendar, or "
                             "$REPRO_ENGINE); both engines give bit-identical results "
                             "-- 'heap' keeps the reference binary-heap engine for "
                             "A/A checks and benchmarking")
    # Observability (repro.obs).  None of these changes simulated behaviour.
    parser.add_argument("--profile", action="store_true",
                        help="profile scheduler wall time per callback category "
                             "and print the breakdown after the run")
    parser.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                        dest="heartbeat_interval_s",
                        help="emit a progress heartbeat (JSONL) every SECONDS of "
                             "wall time while simulating")
    parser.add_argument("--heartbeat-path", default=None, dest="heartbeat_path",
                        metavar="FILE",
                        help="append heartbeat records to FILE instead of stderr "
                             "('{seed}' expands per seed)")
    parser.add_argument("--trace-file", default=None, dest="trace_file", metavar="FILE",
                        help="record a structured JSONL event trace to FILE "
                             "('{seed}' expands per seed); inspect with "
                             "'repro trace FILE'")
    parser.add_argument("--spans", action="store_true",
                        help="sample per-packet spans at the default 1/64 rate "
                             "(equivalent to --span-sample-rate 0.015625); "
                             "inspect with 'repro explain'")
    parser.add_argument("--flight-recorder", default=None, dest="flight_recorder_dir",
                        metavar="DIR",
                        help="keep a ring of recent events and dump it into DIR "
                             "on watchdog/invariant aborts and breaker trips "
                             "('{seed}' expands per seed)")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for (value x scheme x seed) fan-out "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--run-timeout", type=float, default=None, dest="run_timeout",
                        help="per-run timeout in wall-clock seconds (parallel mode; "
                             "escalates x1.5 per retry)")
    parser.add_argument("--max-retries", type=int, default=1, dest="max_retries",
                        help="retries per failed run before it is recorded as failed "
                             "(jittered exponential backoff between attempts)")
    parser.add_argument("--journal-dir", default=None, dest="journal_dir", metavar="DIR",
                        help="checkpoint every completed run into DIR (atomic, "
                             "content-keyed); failed runs dump replay bundles under "
                             "DIR/failures/")
    parser.add_argument("--resume", action="store_true",
                        help="skip runs already journaled in --journal-dir; the "
                             "resumed output is bit-identical to an uninterrupted run")


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    base = PAPER_DEFAULTS if args.paper_defaults else SCALED_DEFAULTS
    overrides = {"scheme": args.scheme, "name": "cli"}
    for field in _NUMERIC_FIELDS:
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if args.no_background:
        overrides["bg_enabled"] = False
    if args.no_query:
        overrides["query_enabled"] = False
    if args.detour_policy is not None:
        overrides["detour_policy"] = args.detour_policy
    if getattr(args, "faults", None):
        from repro.faults import load_fault_spec

        overrides["faults"] = load_fault_spec(args.faults)
    if getattr(args, "no_watchdog", False):
        overrides["watchdog"] = False
    if getattr(args, "controller_spec", None):
        from repro.control.spec import ControllerSpec

        with open(args.controller_spec) as fh:
            spec = ControllerSpec.from_json_text(fh.read())
        # Canonical JSON keeps the journal's scenario hash stable across
        # cosmetic reformattings of the same spec file.
        overrides["controller"] = True
        overrides["controller_spec"] = spec.to_json_text()
    if getattr(args, "controller", False):
        overrides["controller"] = True
    if getattr(args, "profile", False):
        overrides["profile"] = True
    if getattr(args, "heartbeat_interval_s", None) is not None:
        overrides["heartbeat_interval_s"] = args.heartbeat_interval_s
    if getattr(args, "heartbeat_path", None) is not None:
        overrides["heartbeat_path"] = args.heartbeat_path
    if getattr(args, "trace_file", None) is not None:
        overrides["trace_file"] = args.trace_file
    if getattr(args, "spans", False) and "span_sample_rate" not in overrides:
        from repro.obs.spans import DEFAULT_SPAN_RATE

        overrides["span_sample_rate"] = DEFAULT_SPAN_RATE
    if getattr(args, "flight_recorder_dir", None) is not None:
        overrides["flight_recorder_dir"] = args.flight_recorder_dir
    return base.with_overrides(**overrides)


def _parse_seeds(text: str) -> tuple[int, ...]:
    return tuple(int(s) for s in text.split(",") if s.strip())


def _parse_values(text: str):
    values = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        number = float(raw)
        values.append(int(number) if number == int(number) else number)
    return values


def _journal_from_args(args: argparse.Namespace):
    """Build the RunJournal (or None) requested on the command line."""
    if getattr(args, "resume", False) and not getattr(args, "journal_dir", None):
        raise SystemExit("error: --resume requires --journal-dir")
    if getattr(args, "journal_dir", None):
        return RunJournal(args.journal_dir)
    return None


def _exit_code(telemetry: RunTelemetry) -> int:
    if telemetry.interrupted:
        return EXIT_INTERRUPTED
    return 1 if telemetry.runs_failed else 0


def _cmd_run(args: argparse.Namespace) -> tuple[str, int]:
    scenario = _scenario_from_args(args)
    telemetry = RunTelemetry()
    journal = _journal_from_args(args)
    try:
        result = run_pooled(
            scenario,
            seeds=_parse_seeds(args.seeds),
            workers=args.workers,
            run_timeout_s=args.run_timeout,
            max_retries=args.max_retries,
            telemetry=telemetry,
            journal=journal,
            resume=args.resume,
        )
    except RuntimeError as exc:
        # Every seed failed (e.g. a watchdog or invariant abort), or the
        # run was interrupted before any seed completed.
        return f"error: {exc}\n\n{telemetry.summary()}", _exit_code(telemetry) or 1
    rows = [result.row()]
    rows[0]["flows"] = f"{result.flows_completed}/{result.flows_total}"
    rows[0]["events"] = result.events
    rows[0]["wall_s"] = f"{result.wall_seconds:.1f}"
    if result.faults_applied:
        rows[0]["faults"] = sum(result.faults_applied.values())
    text = format_table(rows, title=f"scheme={scenario.scheme} (seeds={args.seeds})")
    if result.profile:
        from repro.obs.profiler import format_profile

        text += "\n\n" + format_profile(result.profile)
    if getattr(args, "out_dir", None):
        from repro.metrics.export import write_artifacts

        written = write_artifacts(result, args.out_dir, telemetry=telemetry,
                                  trace_file=scenario.trace_file)
        names = ", ".join(sorted(path.name for path in written.values()))
        text += f"\n\nartifacts -> {args.out_dir}: {names}"
    if telemetry.runs_failed or telemetry.interrupted or telemetry.cells_resumed:
        text += "\n\n" + telemetry.summary()
    return text, _exit_code(telemetry)


def _cmd_sweep(args: argparse.Namespace) -> tuple[str, int]:
    scenario = _scenario_from_args(args)
    schemes = tuple(s.strip() for s in args.schemes.split(","))
    try:
        for scheme in schemes:
            get_scheme(scheme)  # typos fail here, not halfway into the grid
    except ValueError as exc:
        return f"error: {exc}", 1
    telemetry = RunTelemetry()
    journal = _journal_from_args(args)
    results = run_sweep(
        scenario,
        args.param,
        _parse_values(args.values),
        schemes=schemes,
        seeds=_parse_seeds(args.seeds),
        workers=args.workers,
        run_timeout_s=args.run_timeout,
        max_retries=args.max_retries,
        telemetry=telemetry,
        journal=journal,
        resume=args.resume,
    )
    table = format_sweep(results, args.param, title=f"sweep over {args.param}")
    return table + "\n\n" + telemetry.summary(), _exit_code(telemetry)


def _cmd_replay(args: argparse.Namespace) -> tuple[str, int]:
    """Re-execute a journaled failure from its replay bundle alone.

    Exit code 0 when the recorded abort reproduces (same exception class),
    1 when the run completes or fails differently.  Bundles for
    non-deterministic failures (wall-clock timeouts, worker crashes) carry
    no expected exception; replaying them just reruns the scenario and
    reports the outcome.
    """
    bundle = load_replay_bundle(args.bundle)
    scenario = scenario_from_json_dict(bundle["scenario"])
    expect = bundle.get("expect_exception")
    lines = [
        f"replaying {bundle['key']} (scenario hash {bundle['hash'][:12]}…, "
        f"seed {bundle.get('seed')})",
        f"recorded failure: {bundle['reason']} after {len(bundle.get('attempts', []))} attempt(s)",
    ]
    try:
        result = run_scenario(scenario, trace_paths=bool(bundle.get("trace_paths")))
    except Exception as exc:  # noqa: BLE001 - replay reports, never propagates
        got = type(exc).__name__
        if expect and got == expect:
            lines.append(f"reproduced {got}: {exc}")
            return "\n".join(lines), 0
        lines.append(f"failed differently: expected {expect or 'completion'}, got {got}: {exc}")
        return "\n".join(lines), 1
    lines.append(
        f"run completed ({result.events} events, "
        f"{result.queries_completed}/{result.queries_started} queries)"
    )
    if expect:
        lines.append(f"did NOT reproduce the recorded {expect}")
        return "\n".join(lines), 1
    lines.append("recorded failure was not a deterministic abort (timeout/crash); "
                 "completion here is consistent with a transient cause")
    return "\n".join(lines), 0


def _cmd_trace(args: argparse.Namespace) -> tuple[str, int]:
    """Summarize a structured trace, or dump records of one type."""
    import json

    from repro.obs.trace import format_trace_summary, read_trace, summarize_trace

    try:
        if args.record_type:
            lines = []
            for record in read_trace(args.file, kind=args.record_type):
                lines.append(json.dumps(record, sort_keys=True))
                if args.limit is not None and len(lines) >= args.limit:
                    break
            return "\n".join(lines) if lines else f"(no {args.record_type} records)", 0
        return format_trace_summary(summarize_trace(args.file)), 0
    except FileNotFoundError:
        return f"error: no such trace file: {args.file}", 1
    except ValueError as exc:
        return f"error: invalid trace: {exc}", 1


def _cmd_explain(args: argparse.Namespace) -> tuple[str, int]:
    """Forensics over sampled spans: attribution table + one odyssey."""
    from repro.obs.forensics import (
        attribute_flows,
        format_attribution,
        format_odyssey,
        load_spans,
        span_components,
    )

    try:
        spans = load_spans(args.target)
    except FileNotFoundError:
        return f"error: no such file or directory: {args.target}", 1
    except ValueError as exc:
        return f"error: invalid trace: {exc}", 1
    if not spans:
        return (f"no span records in {args.target} "
                "(sample spans with --spans / --span-sample-rate)"), 1
    rows = attribute_flows(spans)
    parts = [format_attribution(rows, limit=args.flow_limit)]
    # Pick the flow to narrate: an explicit --flow, else the slowest
    # (attribute_flows already ranks rows by span FCT, slowest first).
    flow_id = args.flow_id if args.flow_id is not None else rows[0]["flow"]
    candidates = [s for s in spans if s["flow"] == flow_id]
    if not candidates:
        parts.append(f"flow {flow_id}: no sampled spans")
        return "\n\n".join(parts), 1
    # Most-detoured span breaks ties by latest send: the storm survivor.
    odyssey = max(candidates,
                  key=lambda s: (span_components(s)["detour_hops"], s["t_send"]))
    parts.append(format_odyssey(odyssey))
    return "\n\n".join(parts), 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the job server until SIGTERM/SIGINT; exits 0 on a clean drain."""
    from repro.server import serve_main

    return serve_main(
        args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_retries=args.max_retries,
        run_timeout_s=args.run_timeout,
        rate_per_s=args.rate_per_s,
        burst=args.burst,
        max_queued=args.max_queued,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        quantum=args.quantum,
        heartbeat_interval_s=args.heartbeat_interval,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_jobs(args: argparse.Namespace) -> tuple[str, int]:
    """List a journal directory: completed entries + failure bundles."""
    import os.path

    if not os.path.isdir(args.journal_dir):
        return f"error: no such journal directory: {args.journal_dir}", 1
    journal = RunJournal(args.journal_dir)
    sections = []

    def clip(rows):
        rows.sort(key=lambda r: r.pop("_mtime"), reverse=True)
        return rows[: args.limit] if args.limit is not None else rows

    if not args.failures:
        entries = []
        for entry in journal.iter_entries():
            scenario = entry.get("scenario") or {}
            result = entry.get("result") or {}
            entries.append({
                "key": entry.get("hash", "")[:12],
                "scenario": f"{scenario.get('name')}:{scenario.get('scheme')}",
                "seed": scenario.get("seed"),
                "status": "ok",
                "attempts": len(entry.get("attempts") or ()) + 1,
                "wall_s": f"{float(result.get('wall_seconds') or 0.0):.2f}",
                "events": result.get("events"),
                "_mtime": entry.get("_mtime", 0.0),
            })
        if entries:
            sections.append(format_table(
                clip(entries), title=f"journaled runs ({len(entries)})"))
    bundles = []
    for bundle in journal.iter_bundles():
        attempts = bundle.get("attempts") or ()
        last_wall = attempts[-1].get("wall_s") if attempts else None
        bundles.append({
            "key": bundle.get("hash", "")[:12],
            "scenario": bundle.get("scenario_class")
            or f"{(bundle.get('scenario') or {}).get('name')}:"
               f"{(bundle.get('scenario') or {}).get('scheme')}",
            "seed": bundle.get("seed"),
            "status": "failed",
            "attempts": len(attempts),
            "wall_s": f"{float(last_wall or 0.0):.2f}",
            "reason": str(bundle.get("reason", ""))[:48],
            "_mtime": bundle.get("_mtime", 0.0),
        })
    if bundles:
        sections.append(format_table(
            clip(bundles), title=f"failure bundles ({len(bundles)})"))
    stats = journal.stats()
    sections.append(
        f"{stats['entries']} journaled, {stats['failure_bundles']} failed, "
        f"{stats['claims']} claimed in {args.journal_dir}"
    )
    return "\n\n".join(sections), 0


def _cmd_schemes() -> str:
    rows = []
    for name in available_schemes():
        spec = get_scheme(name)
        rows.append({
            "scheme": name,
            "queues": spec.discipline,
            "dibs": "on" if spec.dibs_enabled else "off",
            "description": spec.description,
        })
    defaults = [
        {"parameter": k, "paper": getattr(PAPER_DEFAULTS, k), "scaled": getattr(SCALED_DEFAULTS, k)}
        for k in ("k", "buffer_pkts", "ecn_threshold_pkts", "qps", "incast_degree",
                  "response_bytes", "bg_interarrival_s", "duration_s")
    ]
    return format_table(rows, title="schemes") + "\n\n" + format_table(defaults, title="defaults")


def _cmd_topo(args: argparse.Namespace) -> str:
    scenario = SCALED_DEFAULTS.with_overrides(topology=args.topology, k=args.k, seed=args.seed)
    topo = scenario.build_topology()
    rows = [{
        "name": topo.name,
        "hosts": len(topo.hosts),
        "switches": len(topo.switches),
        "links": len(topo.links),
        "diameter": topo.diameter(),
    }]
    return format_table(rows, title="topology")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        # The engine is an environment knob, not a Scenario field (see
        # repro.sim.engine.make_scheduler); exporting it here also reaches
        # --workers subprocesses, which inherit the environment.
        import os

        os.environ["REPRO_ENGINE"] = args.engine
    code = 0
    if args.command == "run":
        text, code = _cmd_run(args)
        print(text)
    elif args.command == "sweep":
        text, code = _cmd_sweep(args)
        print(text)
    elif args.command == "replay":
        text, code = _cmd_replay(args)
        print(text)
    elif args.command == "trace":
        text, code = _cmd_trace(args)
        print(text)
    elif args.command == "explain":
        text, code = _cmd_explain(args)
        print(text)
    elif args.command == "serve":
        code = _cmd_serve(args)
    elif args.command == "jobs":
        text, code = _cmd_jobs(args)
        print(text)
    elif args.command == "schemes":
        print(_cmd_schemes())
    elif args.command == "topo":
        print(_cmd_topo(args))
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
