"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      one scenario (any scheme), print the headline metrics
``sweep``    sweep one Scenario parameter across values and schemes
``schemes``  list available schemes and the Table 1/2 defaults
``topo``     describe a topology (sizes, degrees, diameter)

Examples::

    python -m repro run --scheme dibs --qps 125 --seeds 0,1,2
    python -m repro sweep --param buffer_pkts --values 5,10,25,50 \
        --schemes dctcp,dibs
    python -m repro sweep --param qps --values 40,125,250 --seeds 0,1,2 \
        --workers 4 --run-timeout 300
    python -m repro topo --topology fattree --k 8

``--workers N`` fans the (value x scheme x seed) grid out over N worker
processes (results identical to serial; see repro.experiments.parallel).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.parallel import RunTelemetry
from repro.experiments.report import format_sweep, format_table
from repro.experiments.runner import run_pooled
from repro.experiments.scenarios import PAPER_DEFAULTS, SCALED_DEFAULTS, SCHEMES, Scenario
from repro.experiments.sweep import sweep as run_sweep

__all__ = ["main", "build_parser"]

_NUMERIC_FIELDS = {
    "k": int,
    "buffer_pkts": int,
    "ecn_threshold_pkts": int,
    "ttl": int,
    "incast_degree": int,
    "response_bytes": int,
    "qps": float,
    "bg_interarrival_s": float,
    "duration_s": float,
    "drain_s": float,
    "oversubscription": float,
    "seed": int,
    "link_flap_rate": float,
    "link_flap_downtime_s": float,
    "corrupt_rate": float,
    "invariant_check_interval_s": float,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIBS (EuroSys 2014) reproduction: run simulated data center experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario")
    _add_scenario_args(run_p)
    run_p.add_argument("--seeds", default="0", help="comma-separated seeds to pool (default: 0)")
    _add_parallel_args(run_p)

    sweep_p = sub.add_parser("sweep", help="sweep a scenario parameter")
    _add_scenario_args(sweep_p)
    sweep_p.add_argument("--param", required=True, help="Scenario field to sweep")
    sweep_p.add_argument("--values", required=True, help="comma-separated values")
    sweep_p.add_argument("--schemes", default="dctcp,dibs", help="comma-separated schemes")
    sweep_p.add_argument("--seeds", default="0", help="comma-separated seeds to pool")
    _add_parallel_args(sweep_p)

    sub.add_parser("schemes", help="list schemes and defaults")

    topo_p = sub.add_parser("topo", help="describe a topology")
    topo_p.add_argument("--topology", default="fattree",
                        choices=["fattree", "testbed", "leafspine", "linear", "jellyfish"])
    topo_p.add_argument("--k", type=int, default=4)
    topo_p.add_argument("--seed", type=int, default=0)

    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", default="dibs", choices=SCHEMES)
    parser.add_argument("--paper-defaults", action="store_true",
                        help="start from the paper's K=8 Table 1/2 point instead of the scaled one")
    for field, cast in _NUMERIC_FIELDS.items():
        flag = "--" + field.replace("_", "-")
        parser.add_argument(flag, type=cast, default=None, dest=field)
    parser.add_argument("--no-background", action="store_true", help="disable background traffic")
    parser.add_argument("--no-query", action="store_true", help="disable query traffic")
    parser.add_argument("--detour-policy", default=None,
                        choices=["random", "load-aware", "flow-based", "probabilistic"])
    parser.add_argument("--faults", default=None, metavar="SPEC.json",
                        help="JSON fault schedule (see repro.faults.schedule) "
                             "applied to every run")
    parser.add_argument("--no-watchdog", action="store_true",
                        help="disable the livelock watchdog (on by default)")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for (value x scheme x seed) fan-out "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--run-timeout", type=float, default=None, dest="run_timeout",
                        help="per-run timeout in wall-clock seconds (parallel mode)")


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    base = PAPER_DEFAULTS if args.paper_defaults else SCALED_DEFAULTS
    overrides = {"scheme": args.scheme, "name": "cli"}
    for field in _NUMERIC_FIELDS:
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if args.no_background:
        overrides["bg_enabled"] = False
    if args.no_query:
        overrides["query_enabled"] = False
    if args.detour_policy is not None:
        overrides["detour_policy"] = args.detour_policy
    if getattr(args, "faults", None):
        from repro.faults import load_fault_spec

        overrides["faults"] = load_fault_spec(args.faults)
    if getattr(args, "no_watchdog", False):
        overrides["watchdog"] = False
    return base.with_overrides(**overrides)


def _parse_seeds(text: str) -> tuple[int, ...]:
    return tuple(int(s) for s in text.split(",") if s.strip())


def _parse_values(text: str):
    values = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        number = float(raw)
        values.append(int(number) if number == int(number) else number)
    return values


def _cmd_run(args: argparse.Namespace) -> tuple[str, int]:
    scenario = _scenario_from_args(args)
    telemetry = RunTelemetry()
    try:
        result = run_pooled(
            scenario,
            seeds=_parse_seeds(args.seeds),
            workers=args.workers,
            run_timeout_s=args.run_timeout,
            telemetry=telemetry,
        )
    except RuntimeError as exc:
        # Every seed failed (e.g. a watchdog or invariant abort).
        return f"error: {exc}\n\n{telemetry.summary()}", 1
    rows = [result.row()]
    rows[0]["flows"] = f"{result.flows_completed}/{result.flows_total}"
    rows[0]["events"] = result.events
    rows[0]["wall_s"] = f"{result.wall_seconds:.1f}"
    if result.faults_applied:
        rows[0]["faults"] = sum(result.faults_applied.values())
    text = format_table(rows, title=f"scheme={scenario.scheme} (seeds={args.seeds})")
    if telemetry.runs_failed:
        text += "\n\n" + telemetry.summary()
    return text, 1 if telemetry.runs_failed else 0


def _cmd_sweep(args: argparse.Namespace) -> tuple[str, int]:
    scenario = _scenario_from_args(args)
    telemetry = RunTelemetry()
    results = run_sweep(
        scenario,
        args.param,
        _parse_values(args.values),
        schemes=tuple(s.strip() for s in args.schemes.split(",")),
        seeds=_parse_seeds(args.seeds),
        workers=args.workers,
        run_timeout_s=args.run_timeout,
        telemetry=telemetry,
    )
    table = format_sweep(results, args.param, title=f"sweep over {args.param}")
    return table + "\n\n" + telemetry.summary(), 1 if telemetry.runs_failed else 0


def _cmd_schemes() -> str:
    rows = [{"scheme": s} for s in SCHEMES]
    defaults = [
        {"parameter": k, "paper": getattr(PAPER_DEFAULTS, k), "scaled": getattr(SCALED_DEFAULTS, k)}
        for k in ("k", "buffer_pkts", "ecn_threshold_pkts", "qps", "incast_degree",
                  "response_bytes", "bg_interarrival_s", "duration_s")
    ]
    return format_table(rows, title="schemes") + "\n\n" + format_table(defaults, title="defaults")


def _cmd_topo(args: argparse.Namespace) -> str:
    scenario = SCALED_DEFAULTS.with_overrides(topology=args.topology, k=args.k, seed=args.seed)
    topo = scenario.build_topology()
    rows = [{
        "name": topo.name,
        "hosts": len(topo.hosts),
        "switches": len(topo.switches),
        "links": len(topo.links),
        "diameter": topo.diameter(),
    }]
    return format_table(rows, title="topology")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    code = 0
    if args.command == "run":
        text, code = _cmd_run(args)
        print(text)
    elif args.command == "sweep":
        text, code = _cmd_sweep(args)
        print(text)
    elif args.command == "schemes":
        print(_cmd_schemes())
    elif args.command == "topo":
        print(_cmd_topo(args))
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
