"""§6's coexistence claim, executed: MPTCP over a DIBS fabric.

Opens multipath connections (LIA-coupled subflows hashed onto different
ECMP paths) while an incast storm hits one host.  MPTCP spreads each
connection over the fabric; DIBS absorbs the incast at the congested edge.
Neither mechanism interferes with the other — the paper's "DIBS can
co-exist with MPTCP".

Run:  python examples/mptcp_coexistence.py
"""

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree
from repro.transport.base import dibs_host_config
from repro.transport.mptcp import MptcpConfig, start_mptcp_flow


def main() -> None:
    network = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=15, ecn_threshold_pkts=5),
        dibs=DibsConfig(),
        seed=6,
    )

    # Three MPTCP bulk transfers crossing the fabric.
    mptcp_cfg = MptcpConfig(subflows=4, coupled=True, tcp=dibs_host_config())
    connections = [
        start_mptcp_flow(network, src, dst, 400_000, mptcp_cfg)
        for src, dst in (("host_4", "host_12"), ("host_5", "host_13"), ("host_6", "host_14"))
    ]

    # Meanwhile, a 10-way incast slams host_0.
    incast = [
        network.start_flow(f"host_{i}", "host_0", 20_000,
                           transport=dibs_host_config(), kind="query")
        for i in range(1, 11)
    ]

    network.run(until=2.0)

    print("MPTCP connections (4 LIA-coupled subflows each):")
    for conn in connections:
        src = network.host(conn.parent.src).name
        dst = network.host(conn.parent.dst).name
        subflow_fcts = ", ".join(f"{c.fct * 1e3:.2f}" for c in conn.children)
        print(f"  {src}->{dst}: {conn.parent.size} B in {conn.parent.fct * 1e3:.2f} ms "
              f"(subflows: {subflow_fcts} ms)")

    incast_done = max(f.receiver_done_time for f in incast)
    print(f"\nIncast burst absorbed in {incast_done * 1e3:.2f} ms "
          f"({network.total_detours()} detours, {network.total_drops()} drops).")

    # Show the multipath spreading: both uplinks of host_4's edge carried data.
    up0 = network.port_between("edge_1_0", "agg_1_0").pkts_sent
    up1 = network.port_between("edge_1_0", "agg_1_1").pkts_sent
    print(f"host_4's edge uplinks carried {up0} and {up1} packets — "
          "one connection, both paths.")

    assert all(c.completed for c in connections)
    assert all(f.completed for f in incast)


if __name__ == "__main__":
    main()
