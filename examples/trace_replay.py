"""Record a workload, export results, replay the trace — the ops loop.

Runs a mixed workload, writes (a) per-flow results to CSV, (b) the flow
*trace* (who sent what, when) to a replayable file, then replays that
trace on a network with DIBS disabled to ask "what would this exact
workload have looked like without detouring?" — the kind of A/B question
trace replay exists for.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree
from repro.metrics.export import write_flows_csv
from repro.metrics.stats import percentile
from repro.transport.base import dibs_host_config
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic
from repro.workload.tracefile import TraceReplay, load_trace, record_trace


def build(dibs: bool) -> Network:
    return Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=20, ecn_threshold_pkts=6),
        dibs=DibsConfig() if dibs else DibsConfig.disabled(),
        seed=8,
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="dibs-trace-"))

    # 1. Original run, DIBS on.
    original = build(dibs=True)
    cfg = dibs_host_config()
    BackgroundTraffic(original, 0.04, web_search_background(), transport=cfg, stop_at=0.1).start()
    QueryTraffic(original, qps=80, degree=10, response_bytes=20_000,
                 transport=cfg, stop_at=0.1).start()
    original.run(until=2.0)

    csv_path = write_flows_csv(original.collector, workdir / "flows.csv")
    trace_path = record_trace(original.collector, original, workdir / "workload.trace")
    print(f"recorded {len(original.collector.flows)} flows")
    print(f"  per-flow results: {csv_path}")
    print(f"  replayable trace: {trace_path}")

    # 2. Replay the *identical* workload with DIBS off.
    entries = load_trace(trace_path)
    counterfactual = build(dibs=False)
    replay = TraceReplay(counterfactual, entries, transport="dctcp")
    replay.start()
    counterfactual.run(until=2.0)

    def p99(net):
        fcts = [f.fct for f in net.collector.flows if f.completed and f.kind == "query"]
        return percentile(fcts, 99) * 1e3

    print("\nsame workload, two fabrics:")
    print(f"  with DIBS   : query-flow p99 {p99(original):7.2f} ms, "
          f"drops {original.total_drops():>5}, detours {original.total_detours()}")
    print(f"  without DIBS: query-flow p99 {p99(counterfactual):7.2f} ms, "
          f"drops {counterfactual.total_drops():>5}")


if __name__ == "__main__":
    main()
