"""Figure 1 recreated: the walk of a single detoured packet.

Runs an incast with per-packet path tracing enabled, finds the packet that
was detoured the most times, and prints its node-by-node walk plus the
weighted arc list (the numbers on Figure 1's arcs).  You can watch the
packet bounce between the receiver's edge switch, the pod's aggregation
switches, and the core until buffer space opens up.

Run:  python examples/packet_walk.py
"""

from collections import Counter

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree
from repro.metrics.trace import arc_counts


def main() -> None:
    network = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
        dibs=DibsConfig(),
        seed=12,
        trace_paths=True,
    )

    # Capture every data packet's path as it reaches the receiver.
    walks: list[tuple[int, list[str]]] = []
    receiver = network.host("host_0")

    def spy_factory(endpoint):
        def spy(pkt):
            if pkt.is_data and pkt.path:
                walks.append((pkt.detours, list(pkt.path)))
            endpoint(pkt)

        return spy

    flows = [
        network.start_flow(f"host_{i}", "host_0", 20_000, transport="dibs", kind="query")
        for i in range(1, 13)
    ]
    for flow_id, endpoint in list(receiver._endpoints.items()):
        receiver._endpoints[flow_id] = spy_factory(endpoint)

    network.run(until=2.0)
    assert all(f.completed for f in flows)

    detours, path = max(walks, key=lambda item: item[0])
    print(f"Most-detoured packet: {detours} detours, {len(path) - 1} hops")
    print(" -> ".join(path))
    print()
    print(f"{'arc':<24}traversals")
    print("-" * 34)
    for (a, b), count in sorted(arc_counts(path).items(), key=lambda kv: -kv[1]):
        print(f"{a + ' -> ' + b:<24}{count}")

    histogram = Counter(d for d, _ in walks)
    print()
    print("Detours per delivered packet (all query packets):")
    for d in sorted(histogram):
        print(f"  {d:>3} detours: {histogram[d]} packets")


if __name__ == "__main__":
    main()
