"""§7's topology discussion, executed: DIBS beyond the fat-tree.

Runs the same incast burst on four fabrics — fat-tree, leaf-spine, a
Jellyfish random graph, and the degenerate linear chain from footnote 10 —
and reports how detouring fares on each.  More neighbors means more places
to borrow buffer from; even the chain works, detouring backwards.

Run:  python examples/topology_tour.py
"""

from repro import DibsConfig, Network, SwitchQueueConfig
from repro import fat_tree, jellyfish, leaf_spine, linear


def run_on(topo, target, senders, label):
    network = Network(
        topo,
        switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
        dibs=DibsConfig(),
        seed=3,
    )
    flows = [
        network.start_flow(src, target, 20_000, transport="dibs", kind="query")
        for src in senders
    ]
    network.run(until=3.0)
    completed = sum(1 for f in flows if f.completed)
    qct = max((f.receiver_done_time for f in flows if f.completed), default=None)
    print(
        f"{label:<22} flows {completed}/{len(flows)}  "
        f"burst_done={qct * 1e3:7.2f}ms  "
        f"detours={network.total_detours():>5}  drops={network.total_drops():>3}  "
        f"diameter={topo.diameter()}"
    )


def main() -> None:
    print(f"{'topology':<22} incast results (10-pkt buffers, DIBS on)")
    print("-" * 78)

    ft = fat_tree(k=4)
    run_on(ft, "host_0", [f"host_{i}" for i in range(1, 13)], "fat-tree k=4")

    ls = leaf_spine(leaves=4, spines=2, hosts_per_leaf=4)
    run_on(ls, "host_0", [f"host_{i}" for i in range(1, 13)], "leaf-spine 4x2")

    jf = jellyfish(switches=16, fabric_degree=3, hosts_per_switch=1, seed=4)
    run_on(jf, "host_0", [f"host_{i}" for i in range(1, 13)], "jellyfish 16x3")

    chain = linear(switches=4, hosts_per_switch=3)
    run_on(chain, "host_0", [f"host_{i}" for i in range(1, 12)], "linear chain (4 sw)")

    print()
    print("Jellyfish/leaf-spine give DIBS many equal neighbors to spill into;")
    print("the chain still works — packets detour backwards and return — as")
    print("the paper's footnote 10 predicts, just with longer queues.")


if __name__ == "__main__":
    main()
