"""A production-like mixed workload: web-search cluster in miniature.

This is the workload the paper's introduction motivates: latency-critical
partition/aggregate queries sharing the fabric with throughput-oriented
background flows, shaped on the DCTCP production traces.  It uses the
high-level experiment harness — the same one the figure benches use — and
prints the paper's two headline metrics side by side for DCTCP vs
DCTCP+DIBS vs pFabric.

Run:  python examples/web_search_cluster.py
"""

from repro.experiments import SCALED_DEFAULTS, compare_schemes, format_table


def main() -> None:
    scenario = SCALED_DEFAULTS.with_overrides(
        name="web-search",
        duration_s=0.25,
        qps=125.0,          # a busy search frontend
        incast_degree=12,   # each query fans out to 12 of 16 workers
        response_bytes=20_000,
        bg_interarrival_s=0.040,
    )
    results = compare_schemes(scenario, ("dctcp", "dibs", "pfabric"))

    rows = []
    for scheme, result in results.items():
        rows.append(
            {
                "scheme": scheme,
                "qct_p99_ms": f"{result.qct_p99_ms:.2f}" if result.qct_p99_ms else "-",
                "qct_p50_ms": f"{result.qct_p50_ms:.2f}" if result.qct_p50_ms else "-",
                "bg_fct_p99_ms": f"{result.bg_fct_p99_ms:.2f}" if result.bg_fct_p99_ms else "-",
                "queries": f"{result.queries_completed}/{result.queries_started}",
                "drops": result.total_drops,
                "detours": result.detours,
                "timeouts": result.timeouts,
            }
        )
    print(format_table(rows, title="Mini web-search cluster (16 hosts, K=4 fat-tree)"))
    print()
    print("Reading the table: DIBS should match or beat DCTCP on query tail")
    print("latency with near-zero drops; pFabric is competitive on queries")
    print("but pressures long background flows as load grows (Fig. 16).")


if __name__ == "__main__":
    main()
