"""Quickstart: DIBS in ~40 lines.

Builds a K=4 fat-tree, throws a 12-way incast burst at one host, and runs
it twice — once with plain DCTCP switches, once with DIBS detouring — then
prints the completion times.  This is the paper's core claim in miniature:
with DIBS the burst is absorbed by neighboring switches' buffers instead
of being dropped, so no flow waits out a retransmission timeout.

Run:  python examples/quickstart.py
"""

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree


def run_incast(use_dibs: bool) -> dict:
    network = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=30, ecn_threshold_pkts=8),
        dibs=DibsConfig() if use_dibs else DibsConfig.disabled(),
        seed=1,
    )
    # 12 servers answer a query with 20 KB each, all at once -> incast.
    flows = [
        network.start_flow(
            src=f"host_{i}",
            dst="host_0",
            size=20_000,
            transport="dibs" if use_dibs else "dctcp",
            kind="query",
        )
        for i in range(1, 13)
    ]
    network.run(until=2.0)
    assert all(flow.completed for flow in flows)
    return {
        "query_completion_ms": max(f.receiver_done_time for f in flows) * 1e3,
        "slowest_flow_ms": max(f.fct for f in flows) * 1e3,
        "packets_dropped": network.total_drops(),
        "packets_detoured": network.total_detours(),
        "rto_timeouts": sum(f.timeouts for f in flows),
    }


def main() -> None:
    without = run_incast(use_dibs=False)
    with_dibs = run_incast(use_dibs=True)

    print(f"{'metric':<22}{'DCTCP':>12}{'DCTCP+DIBS':>14}")
    print("-" * 48)
    for key in without:
        a, b = without[key], with_dibs[key]
        fmt = "{:>12.2f}{:>14.2f}" if isinstance(a, float) else "{:>12d}{:>14d}"
        print(f"{key:<22}" + fmt.format(a, b))

    improvement = 1 - with_dibs["query_completion_ms"] / without["query_completion_ms"]
    print(f"\nDIBS cut query completion time by {improvement:.0%} "
          f"and eliminated all {without['packets_dropped']} drops.")


if __name__ == "__main__":
    main()
