"""Figure 2 recreated: the anatomy of an absorbed incast burst.

Runs a large incast against one host and renders, as text:

* (a) a per-switch timeline of detour activity — which switches detoured,
  and when (the paper's scatter plot, §2), and
* (b) buffer-occupancy snapshots of the receiver pod's switches at three
  instants t1 < t2 < t3: queues building, everything detouring, congestion
  abating.

Run:  python examples/incast_anatomy.py
"""

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree
from repro.metrics.trace import DetourTrace, QueueOccupancyTrace

BIN_MS = 0.5
RUN_S = 0.02


def render_timeline(trace: DetourTrace) -> None:
    timeline = trace.detour_timeline(bin_s=BIN_MS * 1e-3)
    if not timeline:
        print("(no detours occurred)")
        return
    nbins = max(len(series) for series in timeline.values())
    print(f"Detours per {BIN_MS}ms bin ('.'=0, digits scale, '#'>=10):")
    for switch in sorted(timeline):
        cells = []
        series = timeline[switch] + [0] * (nbins - len(timeline[switch]))
        for count in series:
            if count == 0:
                cells.append(".")
            elif count < 10:
                cells.append(str(count))
            else:
                cells.append("#")
        print(f"  {switch:<10} {''.join(cells)}")


def render_snapshot(occupancy: QueueOccupancyTrace, when: float, label: str) -> None:
    sample = min(occupancy.samples, key=lambda s: abs(s[0] - when))
    t, snapshot = sample
    print(f"\n{label} (t={t * 1e3:.2f}ms) — per-port queue length in packets:")
    for switch in sorted(snapshot):
        bars = " ".join(f"{q:>3}" for q in snapshot[switch])
        print(f"  {switch:<10} [{bars}]")


def main() -> None:
    network = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=20, ecn_threshold_pkts=6),
        dibs=DibsConfig(),
        seed=7,
    )
    trace = DetourTrace(network)
    # host_0 lives in pod 0: watch that pod's switches.
    pod_switches = ["edge_0_0", "edge_0_1", "agg_0_0", "agg_0_1"]
    occupancy = QueueOccupancyTrace(network, pod_switches, interval_s=2e-4)
    occupancy.start(stop_at=RUN_S)

    flows = [
        network.start_flow(f"host_{i}", "host_0", 20_000, transport="dibs", kind="query")
        for i in range(1, 13)
    ]
    network.run(until=RUN_S)
    network.run(until=2.0)  # drain
    assert all(f.completed for f in flows)

    render_timeline(trace)

    if trace.detour_events:
        t_first = trace.detour_events[0][0]
        t_last = trace.detour_events[-1][0]
        t_mid = (t_first + t_last) / 2
        render_snapshot(occupancy, t_first, "t1: queues building up")
        render_snapshot(occupancy, t_mid, "t2: switches detouring")
        render_snapshot(occupancy, t_last + 2e-3, "t3: congestion abating")

    print(f"\nTotals: {network.total_detours()} detours, "
          f"{network.total_drops()} drops, "
          f"burst delivered in {max(f.receiver_done_time for f in flows) * 1e3:.1f}ms")


if __name__ == "__main__":
    main()
