"""Fault injection: DIBS absorbing an incast while the fabric degrades.

Builds a K=4 fat-tree, arms a fault schedule that kills a core-agg link
mid-incast (and recovers it later), sprinkles a few corrupted frames on a
host link, and runs with the livelock watchdog and periodic conservation
audits active — the same guard rails the experiment runner uses.  The
printout shows the applied fault log, how routing and the DIBS detour mask
reacted, and the exact packet-conservation ledger (including in-flight
packets) proving nothing leaked despite the carnage.

Run:  python examples/fault_injection.py
"""

from repro import DibsConfig, Network, SwitchQueueConfig, fat_tree
from repro.faults import (
    LINK_DOWN,
    LINK_UP,
    PACKET_CORRUPT,
    FaultInjector,
    FaultSchedule,
    InvariantChecker,
    Watchdog,
)
from repro.net.audit import conservation_report


def main() -> None:
    network = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
        dibs=DibsConfig(),
        seed=7,
    )

    # A hand-written schedule: one core link dies during the burst and
    # comes back 30 ms later; a host link eats three frames as CRC errors.
    schedule = FaultSchedule.from_tuples(
        [
            (0.002, LINK_DOWN, "agg_0_0", "core_0"),
            (0.032, LINK_UP, "agg_0_0", "core_0"),
            (0.001, PACKET_CORRUPT, "edge_0_0", "host_0", 3),
        ]
    )
    injector = FaultInjector(network, schedule).arm()

    # The guard rails: abort on a frozen clock or hop explosion, and audit
    # the packet-conservation ledger every 5 ms of simulated time.
    Watchdog(network.scheduler, max_hops=255 + 16).install(network)
    checker = InvariantChecker(network, interval_s=0.005, stop_at=0.5).start()

    flows = [
        network.start_flow(f"host_{i}", "host_0", 20_000, transport="dibs", kind="query")
        for i in range(1, 13)
    ]
    network.run(until=2.0)

    print("Applied faults (time, kind, endpoints):")
    for when, kind, node_a, node_b in injector.log:
        target = f"{node_a} <-> {node_b}" if node_b else node_a
        print(f"  {when * 1e3:7.2f} ms  {kind:<15} {target}")
    print()

    done = sum(1 for f in flows if f.completed)
    report = conservation_report(network)
    drops = network.drop_report()
    print(f"Queries completed : {done}/{len(flows)}")
    print(f"Detours           : {network.total_detours()}")
    print(f"Packets killed    : {injector.packets_killed} (in flight on the dead link)")
    print(f"Drop breakdown    : { {k: v for k, v in drops.items() if v} }")
    print(f"Invariant audits  : {checker.checks_run} (all green, or we'd have raised)")
    print()
    print("Conservation ledger (exact, including in-flight):")
    for key, value in report.as_dict().items():
        print(f"  {key:<12} {value}")
    assert report.leaked == 0


if __name__ == "__main__":
    main()
