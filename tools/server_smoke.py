"""CI smoke test for ``repro serve``: dedupe, crash retry, SIGTERM drain.

Drives the real server as a subprocess over real HTTP:

1. submit one fig07 cell (buffer_pkts sweep point) and wait for it;
2. submit the identical cell again — must answer 200 with the journaled
   result (cache hit, no execution);
3. submit a longer-running cell, SIGKILL its worker pid mid-run — the
   scheduler must detect the crash, retry, and complete the job;
4. SIGTERM the server — it must drain (journal in-flight work, spool the
   queue, no orphans) and exit 0.

Exits nonzero with a diagnostic on any violated expectation.

Usage: PYTHONPATH=src python tools/server_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# The fig07 sweep's scaled operating point at one buffer size, shrunk to
# smoke duration.  "Same cell twice" exercises the journal dedupe path.
FIG07_CELL = {
    "name": "fig07-smoke", "buffer_pkts": 10, "duration_s": 0.05,
    "drain_s": 0.4, "qps": 100.0, "incast_degree": 6, "bg_enabled": False,
}

# Long enough (seconds of wall clock) that we can reliably SIGKILL the
# worker while it is still simulating.
SLOW_CELL = {
    "name": "crash-smoke", "duration_s": 2.0, "drain_s": 0.5,
    "qps": 100.0, "incast_degree": 6, "bg_enabled": False,
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(f"http://127.0.0.1:{port}{path}", data=data,
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_terminal(port, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, body = request(port, "GET", f"/jobs/{job_id}")
        job = body["job"]
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    fail(f"job {job_id} never reached a terminal state")


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", state_dir,
         "--port", "0", "--workers", "2", "--rate", "100", "--burst", "50",
         "--max-retries", "3", "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        announce = json.loads(proc.stdout.readline())
        port = announce["listening"]["port"]
        print(f"serving on :{port}, state in {state_dir}")

        # 1. fig07 cell: runs and journals.
        status, body = request(port, "POST", "/jobs",
                               {"tenant": "ci", "scenario": FIG07_CELL})
        if status != 202:
            fail(f"first submission: expected 202, got {status}: {body}")
        first = wait_terminal(port, body["job"]["id"])
        if first["state"] != "done" or first["cached"]:
            fail(f"first run should execute to done, got {first}")
        print(f"fig07 cell done: {first['result']['events']} events")

        # 2. identical cell again: cache hit, no execution.
        status, body = request(port, "POST", "/jobs",
                               {"tenant": "ci", "scenario": FIG07_CELL})
        if status != 200 or not body.get("cached"):
            fail(f"second submission: expected 200 cached, got {status}: {body}")
        if body["job"]["result"]["events"] != first["result"]["events"]:
            fail("cached result differs from the executed one")
        print("dedupe hit: served from journal without executing")

        # 3. kill the worker mid-run: crash detected, retried, completed.
        status, body = request(port, "POST", "/jobs",
                               {"tenant": "ci", "scenario": SLOW_CELL})
        if status != 202:
            fail(f"slow submission: expected 202, got {status}: {body}")
        slow_id = body["job"]["id"]
        pid = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, body = request(port, "GET", f"/jobs/{slow_id}")
            pid = body["job"]["pid"]
            if body["job"]["state"] == "running" and pid:
                break
            time.sleep(0.05)
        if not pid:
            fail("slow job never reported a running worker pid")
        os.kill(pid, signal.SIGKILL)
        print(f"killed worker {pid} mid-run")
        slow = wait_terminal(port, slow_id)
        if slow["state"] != "done":
            fail(f"killed job should retry to done, got {slow}")
        if slow["attempt"] < 2 or not slow["attempts"]:
            fail(f"killed job shows no retry: {slow}")
        if "worker crashed" not in slow["attempts"][0]["reason"]:
            fail(f"retry reason should record the crash: {slow['attempts']}")
        print(f"crash retried: attempt {slow['attempt']}, "
              f"first failure {slow['attempts'][0]['reason']!r}")

        # 4. SIGTERM: graceful drain, exit 0.
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=90)
        if proc.returncode != 0:
            fail(f"server exited {proc.returncode} on SIGTERM; stderr:\n{err}")
        drained = json.loads(out.strip().splitlines()[-1])["drained"]
        print(f"SIGTERM drain clean: {drained}")

        # The journal on disk is complete and readable (no torn files).
        for path in Path(state_dir).rglob("*.json"):
            json.loads(path.read_text())
        if ".claim" in {p.suffix for p in Path(state_dir).iterdir()}:
            fail("drain left execution claims behind")
        print("server smoke ok")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
