"""Editable-install fallback for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` (via setuptools' PEP 660 backend) to
build the editable wheel; fully offline machines may not have it.  This
script reproduces the observable effect of an editable install — making
``import repro`` resolve to ``src/repro`` in the current interpreter — by
dropping a ``.pth`` file into site-packages.

Usage:  python tools/dev_install.py [--uninstall]
"""

from __future__ import annotations

import argparse
import site
import sys
from pathlib import Path

PTH_NAME = "repro-editable.pth"


def site_dir() -> Path:
    for candidate in site.getsitepackages():
        path = Path(candidate)
        if path.is_dir() and path.name == "site-packages":
            return path
    return Path(site.getsitepackages()[0])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uninstall", action="store_true", help="remove the .pth link")
    args = parser.parse_args()

    src = Path(__file__).resolve().parent.parent / "src"
    if not (src / "repro" / "__init__.py").exists():
        print(f"error: {src} does not contain the repro package", file=sys.stderr)
        return 1

    pth = site_dir() / PTH_NAME
    if args.uninstall:
        if pth.exists():
            pth.unlink()
            print(f"removed {pth}")
        else:
            print("nothing to remove")
        return 0

    pth.write_text(str(src) + "\n")
    print(f"wrote {pth} -> {src}")
    print("verify with: python -c 'import repro; print(repro.__version__)'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
