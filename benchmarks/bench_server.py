"""Job-server service levels: throughput, dedupe, fairness, admission.

Not a paper figure — a platform bench for ``repro serve`` (the async job
server over the sweep executor, see repro.server).  Four phases against
one in-process scheduler:

* **burst** — a two-tenant burst of distinct scenario cells through the
  worker pool: jobs/s and achieved parallelism;
* **dedupe** — the identical burst resubmitted: every job must satisfy
  from the journal without executing (cache hit rate = 100%);
* **fairness** — tenant A floods, tenant B trickles; DRR keeps B's mean
  queue wait near A's despite the 4:1 submission imbalance (reported as
  the A:B mean-wait ratio, ~1.0 is perfectly fair);
* **shed** — submissions far past a tight admission gate: the gate must
  shed deterministically (every rejection carries Retry-After) and admit
  exactly its bound.
"""

import tempfile
import time
from pathlib import Path

from repro.experiments import SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.server import AdmissionGate, JobScheduler, JobStore
from repro.experiments.journal import RunJournal

import common

NAME = "server"

TINY = SCALED_DEFAULTS.with_overrides(
    name="bench-server", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)


def _wait_idle(sched, timeout_s=300.0):
    if not sched.wait_idle(timeout_s):
        raise RuntimeError("scheduler failed to go idle")


def run(full: bool = False, workers: int = 4) -> str:
    jobs_n = 32 if full else 12
    state = Path(tempfile.mkdtemp(prefix="bench-server-"))
    sched = JobScheduler(
        store=JobStore(),
        journal=RunJournal(state),
        workers=workers,
        spool_path=state / "spool.json",
    ).start()
    rows = []
    try:
        # Phase 1: two-tenant burst of distinct cells.
        started = time.perf_counter()
        outs = [sched.submit(f"t{i % 2}", 0, TINY.with_overrides(seed=i))
                for i in range(jobs_n)]
        _wait_idle(sched)
        wall = time.perf_counter() - started
        assert all(o.job.state == "done" for o in outs)
        run_seconds = sum(a.get("wall_s", 0.0) for o in outs for a in o.job.attempts)
        rows.append({
            "phase": "burst",
            "jobs": jobs_n,
            "wall_s": f"{wall:.2f}",
            "jobs_per_s": f"{jobs_n / wall:.1f}",
            "cached": 0,
            "shed": 0,
        })

        # Phase 2: identical burst again — pure journal hits, no execution.
        launches_before = sched.launches
        started = time.perf_counter()
        outs = [sched.submit(f"t{i % 2}", 0, TINY.with_overrides(seed=i))
                for i in range(jobs_n)]
        wall = time.perf_counter() - started
        assert all(o.status == "cached" for o in outs)
        assert sched.launches == launches_before, "dedupe hit still executed"
        rows.append({
            "phase": "dedupe",
            "jobs": jobs_n,
            "wall_s": f"{wall:.3f}",
            "jobs_per_s": f"{jobs_n / wall:.0f}" if wall > 0 else "inf",
            "cached": jobs_n,
            "shed": 0,
        })

        # Phase 3: 4:1 submission imbalance; DRR keeps waits comparable.
        flood = [sched.submit("flood", 0, TINY.with_overrides(seed=100 + i)).job
                 for i in range(8 if full else 4)]
        trickle = [sched.submit("trickle", 0, TINY.with_overrides(seed=200 + i)).job
                   for i in range(2 if full else 1)]
        _wait_idle(sched)

        def mean_wait(jobs):
            waits = [j.started_at - j.submitted_at for j in jobs
                     if j.started_at is not None]
            return sum(waits) / len(waits) if waits else 0.0

        ratio = (mean_wait(flood) / mean_wait(trickle)
                 if mean_wait(trickle) > 0 else float("inf"))
        rows.append({
            "phase": "fairness",
            "jobs": len(flood) + len(trickle),
            "wall_s": f"{mean_wait(flood):.2f}/{mean_wait(trickle):.2f}",
            "jobs_per_s": f"wait ratio {ratio:.1f}",
            "cached": 0,
            "shed": 0,
        })
    finally:
        sched.drain(timeout_s=30)

    # Phase 4: a fresh ungated scheduler vs a tight gate (no execution:
    # the scheduler is never started, so the depth bound is exact).
    gate = AdmissionGate(rate_per_s=1000.0, burst=1000, max_queued=4)
    gated = JobScheduler(store=JobStore(), journal=None, workers=1, admission=gate)
    shed = admitted = 0
    for i in range(jobs_n):
        out = gated.submit("t", 0, TINY.with_overrides(seed=300 + i))
        if out.status == "queued":
            admitted += 1
        else:
            assert out.retry_after_s > 0  # every shed quotes a backoff
            shed += 1
    assert admitted == 4, f"gate admitted {admitted}, bound is 4"
    rows.append({
        "phase": "shed",
        "jobs": jobs_n,
        "wall_s": "-",
        "jobs_per_s": "-",
        "cached": 0,
        "shed": shed,
    })
    return format_table(rows, title=f"repro serve service levels (workers={workers})")


def test_bench_server(benchmark):
    common.bench_entry(benchmark, NAME, run)


if __name__ == "__main__":
    common.cli_main(NAME, run)
