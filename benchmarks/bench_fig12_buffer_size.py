"""Figure 12 — variable buffer size with heavy background traffic.

Unlike Figure 7, this sweep runs with heavy background traffic (10 ms
interarrival) and reports both 99th-pct background FCT (12a) and 99th-pct
QCT (12b, log scale in the paper).  Paper shape: no collateral damage at
any buffer size; DIBS's QCT advantage is dramatic at small buffers and the
two schemes converge at large ones.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig12_buffer_size"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.010, name="fig12",
    )
    values = [1, 5, 10, 25, 40, 100, 200] if full else [2, 5, 10, 25, 40, 100]
    # ECN threshold must stay below the buffer: scale it down with the buffer.
    results = {}
    for buffer_pkts in values:
        threshold = max(1, min(base.ecn_threshold_pkts, buffer_pkts // 3 or 1))
        point = base.with_overrides(buffer_pkts=buffer_pkts, ecn_threshold_pkts=threshold)
        results.update(sweep(point, "buffer_pkts", [buffer_pkts], schemes=("dctcp", "dibs")))
    title = (
        "Figure 12(a,b): background FCT and QCT vs buffer size (packets).\n"
        "Paper shape: bg_fct_p99 similar for both schemes at every size (no\n"
        "collateral damage); qct_p99 hugely better with DIBS at small buffers."
    )
    return format_sweep(results, "buffer_pkts", title=title)


def test_fig12_buffer_size(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
