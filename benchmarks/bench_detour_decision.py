"""§5.1 stand-in — per-packet cost of the DIBS detour decision.

The NetFPGA result the paper reports is architectural: the detour decision
is one port-bitmap AND resolved in the same clock cycle as the FIB lookup,
so DIBS adds zero processing delay and runs at line rate.  We cannot
synthesize hardware here; instead this microbenchmark shows the software
analogue — the switch's forwarding step costs essentially the same whether
it forwards normally or detours (the decision is O(ports), not O(queue)).
"""

import random

import pytest

from repro.core.config import DibsConfig
from repro.net.host import Host
from repro.net.link import Port, connect
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.switch import Switch
from repro.sim.engine import Scheduler

import common

NAME = "detour_decision"


def build_switch(neighbor_count=7, desired_full=False):
    """A switch with one host port (the FIB target) and N switch neighbors."""
    sched = Scheduler()
    hub = Switch(100, "hub", sched, dibs=DibsConfig(), rng=random.Random(1))
    host = Host(0, "h0", sched)
    hub_host = Port(hub, DropTailQueue(2 if desired_full else 1 << 40), 1e9, 0.0)
    connect(hub_host, Port(host, DropTailQueue(1 << 40), 1e9, 0.0))
    for i in range(neighbor_count):
        nbr = Switch(101 + i, f"n{i}", sched, rng=random.Random(i))
        p = Port(hub, DropTailQueue(1 << 40), 1e9, 0.0)
        connect(p, Port(nbr, DropTailQueue(1 << 40), 1e9, 0.0))
    hub.fib = {0: [0]}
    if desired_full:
        # Saturate the host-facing port: transmitter + 2-deep queue.
        for _ in range(3):
            hub.receive(Packet(flow_id=9, src=5, dst=0, payload=1460), in_port=1)
        assert hub.ports[0].queue.is_full()
    return hub


def _forward_many(hub, n=2000):
    for i in range(n):
        hub.receive(Packet(flow_id=i, src=5, dst=0, payload=1460), in_port=1)


def test_forward_path_cost(benchmark):
    """Baseline: normal forwarding with DIBS enabled but not triggering."""
    hub = build_switch(desired_full=False)
    benchmark.pedantic(lambda: _forward_many(hub), rounds=5, iterations=1, warmup_rounds=1)
    assert hub.counters.detours == 0


def test_detour_path_cost(benchmark):
    """The detour path: desired port full, every packet detours."""
    hub = build_switch(desired_full=True)
    benchmark.pedantic(lambda: _forward_many(hub), rounds=5, iterations=1, warmup_rounds=1)
    assert hub.counters.detours > 0
    common.save_table(
        NAME,
        "Section 5.1 stand-in: per-packet switch decision cost.\n"
        "Compare the two benchmark rows: the detour path costs the same\n"
        "order as normal forwarding (no per-queue scan, no extra state),\n"
        "matching the paper's 'decides within the same clock cycle' claim.",
    )
