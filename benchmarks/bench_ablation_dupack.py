"""Ablation (§4) — handling DIBS reordering at the hosts.

The paper disables fast retransmit for all DIBS experiments but notes that
"a dup-ack threshold of larger than 10 packets is usually sufficient to
deal with reordering caused by DIBS".  This bench compares, under DIBS:

* fast retransmit disabled (the paper's configuration),
* dup-ACK threshold 10 (the paper's suggested alternative),
* the stock threshold of 3 (what naive deployment would do).

Expected shape: disabled ~= threshold-10, both clearly better than
threshold-3, which misfires on detour-induced reordering and spuriously
retransmits.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "ablation_dupack_threshold"

VARIANTS = [("disabled", None), ("threshold-10", 10), ("threshold-3", 3)]


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs", duration_s=1.0 if full else 0.2, name="dupack",
    )
    rows = []
    for label, threshold in VARIANTS:
        result = run_scenario(base.with_overrides(dupack_threshold=threshold,
                                                  name=f"dupack:{label}"))
        qct = result.qct_p99_ms
        rows.append(
            {
                "fast_retransmit": label,
                "qct_p99_ms": f"{qct:.2f}" if qct is not None else "-",
                "retransmits": result.retransmits,
                "timeouts": result.timeouts,
                "detours": result.detours,
            }
        )
    title = (
        "Ablation: dup-ACK handling under DIBS reordering (§4).\n"
        "Expected shape: disabling fast retransmit ~= threshold 10; the\n"
        "stock threshold of 3 spuriously retransmits on reordering."
    )
    return format_table(rows, title=title)


def test_ablation_dupack(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
