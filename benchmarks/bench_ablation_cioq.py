"""Ablation (§4) — DIBS on a combined input/output-queued switch.

The paper claims DIBS ports directly to CIOQ switches: the forwarding
engine detours at output-queue-full time, exactly like the output-queued
model.  This bench runs the default incast workload on both architectures
with DIBS on and off, showing (a) the CIOQ fabric adds only its service
latency, and (b) DIBS's win carries over unchanged.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

import common

NAME = "ablation_cioq"


def _run(scenario, architecture: str):
    net_cfg = scenario.switch_queue_config()
    net_cfg.architecture = architecture
    from repro.net.network import Network

    net = Network(scenario.build_topology(), switch_queues=net_cfg,
                  dibs=scenario.dibs_config(), seed=scenario.seed)
    transport = scenario.transport_config()
    BackgroundTraffic(net, scenario.bg_interarrival_s, web_search_background(),
                      transport=transport, stop_at=scenario.duration_s).start()
    query = QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                         transport=transport, stop_at=scenario.duration_s)
    query.start()
    net.run(until=scenario.duration_s + scenario.drain_s)
    qcts = net.collector.qct_values()
    from repro.metrics.stats import percentile

    return {
        "qct_p99_ms": f"{percentile(qcts, 99) * 1e3:.2f}" if qcts else "-",
        "drops": net.total_drops(),
        "detours": net.total_detours(),
    }


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="cioq",
    )
    rows = []
    for scheme in ("dctcp", "dibs"):
        for architecture in ("output", "cioq"):
            metrics = _run(base.with_overrides(scheme=scheme), architecture)
            rows.append({"scheme": scheme, "architecture": architecture, **metrics})
    title = (
        "Section 4 ablation: DIBS on output-queued vs CIOQ switches.\n"
        "Expected shape: per architecture, DIBS eliminates drops and cuts\n"
        "qct_p99; the CIOQ fabric itself only adds its service latency."
    )
    return format_table(rows, title=title)


def test_ablation_cioq(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
