"""§5.6 — fairness among long-lived flows.

Hosts are split into node-disjoint pairs with N long-lived flows in both
directions (paper: 64 pairs x N=1..16 on 128 hosts, Jain's index > 0.9).
Scaled: 8 pairs on 16 hosts.  Absolute Jain values on a small fat-tree are
limited by flow-level ECMP collisions (some flows share a fabric link), so
we report DIBS alongside plain DCTCP — the paper's point is that detouring
does not *degrade* fairness.
"""

from repro.core.config import DibsConfig
from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.workload.longlived import LongLivedFlows

import common

NAME = "fairness_longlived"


def _jain(scenario, flows_per_direction):
    net = scenario.build_network()
    workload = LongLivedFlows(net, flows_per_direction, transport=scenario.transport_config())
    workload.start()
    net.run(until=scenario.duration_s)
    return workload.fairness(until=scenario.duration_s), net.total_detours()


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=0.5 if full else 0.08, name="fairness",
    )
    counts = [1, 2, 4, 8, 16] if full else [1, 2, 4, 8]
    rows = []
    for n in counts:
        row = {"flows_per_direction": n, "total_flows": len(base.build_topology().hosts) * n}
        for scheme in ("dctcp", "dibs"):
            jain, detours = _jain(base.with_overrides(scheme=scheme), n)
            row[f"{scheme}:jain"] = f"{jain:.3f}"
            if scheme == "dibs":
                row["dibs:detours"] = detours
        rows.append(row)
    title = (
        "Section 5.6: Jain's fairness index over long-lived flow goodput.\n"
        "Paper shape: index > 0.9 for all N at K=8 (128 hosts).  On the\n"
        "scaled K=4 fabric ECMP collisions cap the absolute index; the\n"
        "preserved result is dibs:jain ~= dctcp:jain (DIBS adds no unfairness)."
    )
    return format_table(rows, title=title)


def test_fairness_longlived(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
