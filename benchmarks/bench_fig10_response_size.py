"""Figure 10 — variable query response size.

Sweeps the per-responder response size from 20 KB to 50 KB.  Paper shape:
DIBS improves 99th-pct QCT at all sizes but the improvement shrinks with
size (21 ms at 20 KB down to 6 ms at 50 KB) as spurious timeouts creep in;
background FCT impact grows slightly (1.2 ms -> 4.4 ms).
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig10_response_size"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.120, name="fig10",
    )
    values = [20_000, 30_000, 40_000, 50_000]
    results = sweep(base, "response_bytes", values, schemes=("dctcp", "dibs"), seeds=(0, 1, 2))
    title = (
        "Figure 10: QCT / background FCT vs query response size (bytes).\n"
        "Paper shape: DIBS improvement in qct_p99 shrinks as responses\n"
        "grow; collateral bg_fct_p99 increase stays small but grows with size."
    )
    return format_sweep(results, "response_bytes", title=title)


def test_fig10_response_size(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
