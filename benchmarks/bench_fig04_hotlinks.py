"""Figure 4 — sparsity of hot links.

The paper plots, for baseline (300 qps), heavy (2000 qps), and extreme
(10000 qps) workloads, the CDF over time of the fraction of fabric links
with utilization >= 90%.  The takeaway: only a handful of links are ever
hot at once.  Scaled qps: 40 / 250 / 1250 over 16 hosts.
"""

from repro.experiments import SCALED_DEFAULTS, PAPER_DEFAULTS
from repro.experiments.report import format_table
from repro.metrics.hotlinks import FabricSampler
from repro.metrics.stats import percentile
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

import common

NAME = "fig04_hotlinks"


def _run_workload(scenario, sampler_interval=1e-3, hot_threshold=0.9):
    net = scenario.build_network()
    transport = scenario.transport_config()
    BackgroundTraffic(net, scenario.bg_interarrival_s, web_search_background(),
                      transport=transport, stop_at=scenario.duration_s).start()
    QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                 transport=transport, stop_at=scenario.duration_s).start()
    sampler = FabricSampler(net, interval_s=sampler_interval, hot_threshold=hot_threshold)
    sampler.start(stop_at=scenario.duration_s)
    net.run(until=scenario.duration_s)
    return sampler


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs", duration_s=0.4 if full else 0.15, drain_s=0.0,
    )
    workloads = (
        [("baseline", 300.0), ("heavy", 2000.0), ("extreme", 10_000.0)]
        if full
        else [
            ("baseline", common.SCALED_BASELINE_QPS),
            ("heavy", common.SCALED_HEAVY_QPS),
            ("extreme", common.SCALED_EXTREME_QPS),
        ]
    )
    rows = []
    # 0.9 is Figure 4's threshold; 0.5 reproduces the Figure 3 / Flyways
    # definition, which the paper's footnote 5 says gives a similar CDF.
    for threshold in (0.9, 0.5):
        for label, qps in workloads:
            sampler = _run_workload(
                base.with_overrides(qps=qps, name=f"fig04-{label}"),
                hot_threshold=threshold,
            )
            hot = sampler.hot_fractions
            rows.append(
                {
                    "hot>=": threshold,
                    "workload": f"{label} ({qps:g} qps)",
                    "bins": len(hot),
                    "median_hot_frac": f"{percentile(hot, 50):.3f}",
                    "p90_hot_frac": f"{percentile(hot, 90):.3f}",
                    "max_hot_frac": f"{max(hot):.3f}",
                    "frac_time_any_hot": f"{sum(1 for h in hot if h > 0) / len(hot):.3f}",
                }
            )
    title = (
        "Figures 3+4: fraction of fabric links 'hot' per 1ms bin.\n"
        "Threshold 0.9 is Fig. 4's definition, 0.5 is Fig. 3's (Flyways).\n"
        "Paper shape: even the heavy workload keeps the hot fraction small;\n"
        "the CDF rises steeply near zero."
    )
    return format_table(rows, title=title)


def test_fig04_hotlinks(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
