"""Figure 5 — available buffer near hot links.

For the same three workload intensities as Figure 4, the paper plots the
CDF of the fraction of buffer *available* in the 1-hop and 2-hop switch
neighborhoods of hot links.  The takeaway: ~80% of nearby buffers are empty
in all but the extreme (DIBS-breaking) workload — the headroom DIBS uses.
"""

from repro.experiments import SCALED_DEFAULTS, PAPER_DEFAULTS
from repro.experiments.report import format_table
from repro.metrics.hotlinks import FabricSampler
from repro.metrics.stats import percentile
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

import common

NAME = "fig05_neighbor_buffers"


def _run_workload(scenario):
    net = scenario.build_network()
    transport = scenario.transport_config()
    BackgroundTraffic(net, scenario.bg_interarrival_s, web_search_background(),
                      transport=transport, stop_at=scenario.duration_s).start()
    QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                 transport=transport, stop_at=scenario.duration_s).start()
    sampler = FabricSampler(net, interval_s=5e-4, hot_threshold=0.9)
    sampler.start(stop_at=scenario.duration_s)
    net.run(until=scenario.duration_s)
    return sampler


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs", duration_s=0.4 if full else 0.15, drain_s=0.0,
    )
    workloads = (
        [("baseline", 300.0), ("heavy", 2000.0), ("extreme", 10_000.0)]
        if full
        else [
            ("baseline", common.SCALED_BASELINE_QPS),
            ("heavy", common.SCALED_HEAVY_QPS),
            ("extreme", common.SCALED_EXTREME_QPS),
        ]
    )
    rows = []
    for label, qps in workloads:
        sampler = _run_workload(base.with_overrides(qps=qps, name=f"fig05-{label}"))
        for hops, series in ((1, sampler.neighbor_free_1hop), (2, sampler.neighbor_free_2hop)):
            if series:
                row = {
                    "workload": label,
                    "neighborhood": f"{hops}-hop",
                    "hot_bins": len(series),
                    "median_free": f"{percentile(series, 50):.3f}",
                    "p10_free": f"{percentile(series, 10):.3f}",
                    "min_free": f"{min(series):.3f}",
                }
            else:
                row = {
                    "workload": label,
                    "neighborhood": f"{hops}-hop",
                    "hot_bins": 0,
                    "median_free": "-",
                    "p10_free": "-",
                    "min_free": "-",
                }
            rows.append(row)
    title = (
        "Figure 5: buffer availability in switch neighborhoods of hot links.\n"
        "Paper shape: baseline/heavy keep ~80% of nearby buffers free; only\n"
        "the extreme workload erodes the headroom."
    )
    return format_table(rows, title=title)


def test_fig05_neighbor_buffers(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
