"""Figure 16 — DIBS (DCTCP+DIBS) vs pFabric across query arrival rates.

pFabric runs 24-packet priority queues and minimal-TCP hosts (350 us fixed
RTO at 1 Gbps).  Paper shape: (a) pFabric's strict shortest-remaining-first
scheduling starves long *background* flows as query load grows — its
99th-pct background FCT blows up while DIBS's stays flat; (b) on query
traffic the two are comparable, with DIBS slightly ahead at the highest
rates where pFabric drops and retransmits heavily.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig16_pfabric"


def run(full: bool = False, workers: int = 1) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.120, name="fig16",
    )
    values = [300, 500, 1000, 1500, 2000] if full else [40, 65, 125, 190, 250]
    results = sweep(base, "qps", values, schemes=("pfabric", "dibs"), seeds=(0, 1, 2),
                    workers=workers)
    title = (
        "Figure 16(a,b): DIBS vs pFabric across query arrival rate.\n"
        "Paper shape: pFabric's large-background-flow FCT grows sharply with\n"
        "load (strict shortest-remaining-first starves long flows); DIBS's\n"
        "stays low.  Query QCT comparable between the two."
    )
    # Fig. 16(a) is about *long* background flows — the ones pFabric's
    # priority order starves — so report the >=100KB background tail.
    table = format_sweep(
        results, "qps", title=title,
        metrics=("qct_p99_ms", "bg_fct_large_p99_ms"),
    )
    table += "\n\n" + _deep_incast_table(base, full, workers)
    return table


def _deep_incast_table(base, full: bool, workers: int = 1) -> str:
    """The regime where the paper sees DIBS edge out pFabric on QCT:
    bursts much deeper than pFabric's 24-packet queues put pFabric into
    its excessive-retransmission mode (§5.8)."""
    from repro.experiments.parallel import run_grid
    from repro.experiments.report import format_table

    deep = base.with_overrides(
        incast_degree=100 if full else 15,
        response_bytes=20_000 if full else 40_000,
        qps=2000 if full else 125,
        duration_s=0.5 if full else 0.15,
        name="fig16-deep",
    )
    cells = {scheme: deep.with_overrides(scheme=scheme) for scheme in ("pfabric", "dibs")}
    results = run_grid(cells, seeds=(0,), workers=workers)
    rows = []
    for scheme in ("pfabric", "dibs"):
        result = results[scheme]
        qct = result.qct_p99_ms
        rows.append(
            {
                "scheme": scheme,
                "qct_p99_ms": f"{qct:.1f}" if qct is not None else "-",
                "drops": result.total_drops,
                "retransmits": result.retransmits,
            }
        )
    return format_table(
        rows,
        title=(
            "Fig. 16 deep-incast point (burst >> 24-pkt pFabric queues):\n"
            "pFabric over-drops and retransmits excessively; DIBS detours."
        ),
    )


def test_fig16_pfabric(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
