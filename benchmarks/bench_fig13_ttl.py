"""Figure 13 — limiting detours via the packet TTL.

Sweeps the initial TTL from 12 to 255 (the network diameter is 6, so TTL
12 permits only ~3 backward detours).  Paper shape: DCTCP is insensitive
to TTL; DIBS improves as TTL grows (low TTL forces drops of detoured
packets), and TTL barely moves background FCT.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig13_ttl"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.010, name="fig13",
    )
    values = [12, 24, 36, 48, 255]
    results = sweep(base, "ttl", values, schemes=("dctcp", "dibs"))
    title = (
        "Figure 13: QCT / background FCT vs max TTL.\n"
        "Paper shape: TTL has no effect on DCTCP; DIBS qct_p99 improves\n"
        "with higher TTL as fewer detoured packets expire."
    )
    return format_sweep(results, "ttl", title=title)


def test_fig13_ttl(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
