"""Ablation (§6) — DIBS vs packet-level ECMP ("packet spraying").

§6 argues that even perfect per-packet load balancing cannot help incast:
"When multiple flows converge on a single receiver and the edge switch
becomes a bottleneck, even packet-level, load-aware routing will not help
in this setting, while DIBS can."  This bench runs the default incast
workload under flow-ECMP DCTCP, sprayed DCTCP, and DIBS.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_pooled

import common

NAME = "ablation_packet_spray"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="spray",
    )
    rows = []
    for scheme in ("dctcp", "dctcp-spray", "dibs"):
        result = run_pooled(base.with_overrides(scheme=scheme, name=f"spray:{scheme}"),
                            seeds=(0, 1))
        qct = result.qct_p99_ms
        fct = result.bg_fct_p99_ms
        rows.append(
            {
                "scheme": scheme,
                "qct_p99_ms": f"{qct:.2f}" if qct is not None else "-",
                "bg_fct_p99_ms": f"{fct:.2f}" if fct is not None else "-",
                "drops": result.total_drops,
                "retransmits": result.retransmits,
                "timeouts": result.timeouts,
            }
        )
    title = (
        "Section 6 ablation: packet-level ECMP cannot fix incast.\n"
        "Expected shape: spraying leaves last-hop drops (and adds\n"
        "reordering); DIBS eliminates the drops at the same operating point."
    )
    return format_table(rows, title=title)


def test_ablation_spray(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
