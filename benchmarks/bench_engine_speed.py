"""Engine speed benchmark — calendar queue versus the binary heap.

Not a paper figure: records the before/after trajectory of the engine
rewrite (heapq calendar -> bucketed calendar queue + tx-done elision +
hot-path hoists, see `repro.sim.engine` and INTERNALS.md) and guards it
against regression.  Two workloads:

1. **raw event chain** — ``_CHAIN_ACTORS`` self-rescheduling no-op
   timers drained for ``RAW_EVENTS`` events.  This is the steady-state
   regime the calendar queue is designed for (a bounded band of pending
   events marching forward in time — exactly how ports and transports
   schedule), with no packet pipeline on top.  Pure scheduler cost.
2. **fig07 incast (K=8)** — the paper's incast experiment (300 qps of
   40-degree partition/aggregate queries, Table 1/2 operating point) on
   the full K=8 fat-tree, 128 hosts, run end to end through
   ``run_scenario``.  This is the workload the ROADMAP names as the
   binding constraint; events/s here is the number that decides whether
   the suite runs figures at K=4 or K=8.  Paper scale matters for the
   engine comparison: a heap pays O(log n) Python-level comparisons per
   push/pop, so the K=4 cell (a few hundred pending events) understates
   the gap the real pending-set size (thousands) produces, while the
   calendar's bucket math is O(1) at either scale.

Determinism is checked on the *scaled* K=4 fig07 cell (fast enough to
run several times per invocation); ``--full`` extends the same
engine-A/A identity check to the K=8 workload.

The "before" arm is the real before: ``HeapScheduler`` (the reference
heapq engine preserved in `repro.sim.engine_heap`) with tx-done elision
disabled (``REPRO_ELIDE_TX=0``), i.e. the seed engine's behaviour.
Events/s is computed over *logical* events — dispatched plus elided
tx-dones — which both engines count identically, so the two arms divide
the same numerator.

Every timed sample runs in a **fresh subprocess**: repeated runs inside
one interpreter inherit allocator fragmentation and GC pressure from
earlier arms (measurably — tens of percent on this workload), so
in-process interleaving biases whichever arm runs later.  A process per
sample keeps the arms independent; interleaving the arms round-by-round
still cancels slow machine drift; best-of-N discards the one-sided
noise (noise only ever adds time).

Determinism (always checked, and enforced under ``--check``):

* **engine A/A** — the fig07 scenario's canonical metrics (everything
  except wall time and instrumentation payloads) must be byte-identical
  between the calendar and heap engines for the same seed;
* **serial == parallel** — ``run_pooled`` over two seeds with
  ``workers=1`` and ``workers=2`` must pool to byte-identical metrics,
  and both must match the heap engine's serial pooled result.

``--check`` additionally gates speed: the live calendar/heap fig07
events/s *ratio* is compared against the ratio recorded in
``BENCH_engine.json``; the leg fails if the live ratio has lost more
than ``REGRESSION_TOLERANCE`` (20%) of the committed one.  Comparing
ratios rather than absolute events/s keeps the gate meaningful across
machines — absolute throughput is hardware weather, the speedup is the
property this PR claims.  See BENCH_engine.md for methodology.

Usage::

    python benchmarks/bench_engine_speed.py [--rounds N] [--full]
    python benchmarks/bench_engine_speed.py --check
    python benchmarks/bench_engine_speed.py --update-baseline
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import result_to_dict, run_pooled, run_scenario
from repro.sim.engine import Scheduler
from repro.sim.engine_heap import HeapScheduler

import common

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"

RAW_EVENTS = 200_000
_CHAIN_ACTORS = 64

# --check fails when the live calendar/heap fig07 speedup drops below
# (1 - tolerance) times the committed baseline's speedup.
REGRESSION_TOLERANCE = 0.20

# Timed workload: the paper's incast experiment on the full K=8 fat-tree
# (128 hosts) at the Table 1/2 operating point, shortened to smoke length
# — long enough to reach steady state (hundreds of thousands of events),
# short enough that interleaved multi-round sampling stays in seconds.
FIG07_FULL = PAPER_DEFAULTS.with_overrides(
    name="fig07-incast-k8", scheme="dibs", duration_s=0.05, drain_s=0.3,
)

# Determinism workload: the scaled K=4 small-buffer DIBS incast cell (see
# bench_fig07_buffer_sweep) — the same pipeline at a size cheap enough to
# run the A/A and pooled identity checks several times per invocation.
FIG07_CELL = SCALED_DEFAULTS.with_overrides(
    name="fig07-incast", scheme="dibs", buffer_pkts=25, ecn_threshold_pkts=8,
    duration_s=0.2, drain_s=0.5,
)

_ENGINES = {"calendar": Scheduler, "heap": HeapScheduler}


class _engine_env:
    """Context manager pinning REPRO_ENGINE / REPRO_ELIDE_TX.

    The heap arm runs with elision off: that is the seed engine exactly.
    Environment variables propagate to pooled worker processes, so the
    same pin covers the parallel arms.
    """

    def __init__(self, engine: str):
        self._env = {
            "REPRO_ENGINE": engine,
            "REPRO_ELIDE_TX": "0" if engine == "heap" else "1",
        }
        self._saved: dict = {}

    def __enter__(self):
        for key, value in self._env.items():
            self._saved[key] = os.environ.get(key)
            os.environ[key] = value
        return self

    def __exit__(self, *exc):
        for key, prev in self._saved.items():
            if prev is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prev
        return False


def _raw_chain(make_sched) -> float:
    """Seconds to drain RAW_EVENTS chained no-op events (GC parked).

    ``_CHAIN_ACTORS`` timers each perpetually reschedule themselves with
    a fixed per-actor period; the mutually staggered periods keep bucket
    occupancy mixed instead of phase-locked.  ``max_events`` bounds the
    run, so both engines execute exactly RAW_EVENTS dispatches over an
    identical event stream.
    """
    sched = make_sched()

    def tick(period: float) -> None:
        sched.schedule_once(period, tick, period)

    for i in range(_CHAIN_ACTORS):
        # Distinct start offsets and mutually irrational-ish periods.
        sched.schedule_once(1e-7 + i * 3.7e-9, tick, 1e-6 + i * 1.3e-8)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        sched.run(max_events=RAW_EVENTS)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert sched.events_processed == RAW_EVENTS
    return elapsed


def _fig07_run(engine: str):
    """(run_loop_seconds, logical_events) for one K=8 fig07 run.

    The denominator is the event-loop wall alone: building a 128-host
    fat-tree is a fixed cost identical in both arms, and folding it into
    the divisor dilutes exactly the ratio this benchmark measures.
    """
    with _engine_env(engine):
        result = run_scenario(FIG07_FULL)
    return result.run_loop_seconds, result.events


def _worker_main(workload: str, engine: str) -> int:
    """Timed-sample subprocess entry point: print one JSON record."""
    if workload == "raw":
        wall = _raw_chain(_ENGINES[engine])
        payload = {"wall": wall, "events": RAW_EVENTS}
    else:
        wall, events = _fig07_run(engine)
        payload = {"wall": wall, "events": events}
    print(json.dumps(payload))
    return 0


def _sample(workload: str, engine: str) -> dict:
    """Run one timed sample in a fresh interpreter (see module docstring)."""
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--worker", workload, "--engine", engine],
        capture_output=True, text=True, check=False,
        cwd=os.path.dirname(os.path.abspath(__file__)),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{workload}/{engine} sample failed:\n{proc.stderr.strip()}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def measure(rounds: int = 3) -> dict:
    """Best-of-`rounds` subprocess measurements, arms interleaved."""
    samples = {"raw": {"heap": [], "calendar": []},
               "fig07": {"heap": [], "calendar": []}}
    events = {"raw": {}, "fig07": {}}
    for _ in range(rounds):
        for workload in ("raw", "fig07"):
            for engine in ("heap", "calendar"):
                record = _sample(workload, engine)
                samples[workload][engine].append(record["wall"])
                events[workload][engine] = record["events"]
    out = {}
    for engine in ("heap", "calendar"):
        raw_wall = min(samples["raw"][engine])
        fig_wall = min(samples["fig07"][engine])
        fig_events = events["fig07"][engine]
        out[engine] = {
            "raw_chain_events_per_s": round(RAW_EVENTS / raw_wall, 1),
            "fig07_events": fig_events,
            "fig07_wall_s": round(fig_wall, 4),
            "fig07_events_per_s": round(fig_events / fig_wall, 1),
        }
    out["speedup_raw_chain"] = round(
        out["calendar"]["raw_chain_events_per_s"] / out["heap"]["raw_chain_events_per_s"], 3)
    out["speedup_fig07"] = round(
        out["calendar"]["fig07_events_per_s"] / out["heap"]["fig07_events_per_s"], 3)
    return out


def _canonical_metrics(result) -> str:
    """Everything measured, minus wall time and instrumentation payloads."""
    payload = result_to_dict(result, include_scenario=False)
    for name in ("wall_seconds", "run_loop_seconds", "profile", "collector"):
        payload.pop(name, None)
    return json.dumps(payload, sort_keys=True, default=str)


def _determinism_failures() -> list[str]:
    """A/A and serial-vs-parallel identity checks on the scaled cell."""
    failures = []
    with _engine_env("calendar"):
        cal = _canonical_metrics(run_scenario(FIG07_CELL))
    with _engine_env("heap"):
        heap = _canonical_metrics(run_scenario(FIG07_CELL))
    if cal != heap:
        failures.append("fig07 metrics differ between calendar and heap engines (seed fixed)")
    with _engine_env("calendar"):
        serial = _canonical_metrics(run_pooled(FIG07_CELL, seeds=(0, 1), workers=1))
        parallel = _canonical_metrics(run_pooled(FIG07_CELL, seeds=(0, 1), workers=2))
    with _engine_env("heap"):
        heap_serial = _canonical_metrics(run_pooled(FIG07_CELL, seeds=(0, 1), workers=1))
    if serial != parallel:
        failures.append("pooled fig07 metrics differ between workers=1 and workers=2 (calendar)")
    if serial != heap_serial:
        failures.append("pooled fig07 metrics differ between calendar and heap engines")
    return failures


def _full_smoke() -> tuple[dict, list[str]]:
    """K=8 / 128-host smoke: calendar throughput plus the engine A/A
    identity check at paper scale (the quick checks only cover K=4)."""
    failures = []
    with _engine_env("calendar"):
        result = run_scenario(FIG07_FULL)
        cal = _canonical_metrics(result)
    with _engine_env("heap"):
        heap = _canonical_metrics(run_scenario(FIG07_FULL))
    if cal != heap:
        failures.append(
            "K=8 fig07 metrics differ between calendar and heap engines (seed fixed)")
    return {
        "events": result.events,
        "wall_s": round(result.run_loop_seconds, 2),
        "events_per_s": round(result.events / result.run_loop_seconds, 1),
    }, failures


def _baseline_payload(measured: dict) -> dict:
    return {
        "workload": ("fig07-incast-k8: PAPER_DEFAULTS K=8 fat-tree "
                     "(128 hosts), scheme=dibs, Table 1/2 operating point, "
                     "0.05s + 0.3s drain"),
        "raw_chain_events": RAW_EVENTS,
        "trajectory": [
            dict(label="before: heapq engine, no tx-done elision (seed)",
                 engine="heap", **measured["heap"]),
            dict(label="after: calendar queue + tx-done elision + hot-path hoists",
                 engine="calendar", **measured["calendar"]),
        ],
        "speedup_raw_chain": measured["speedup_raw_chain"],
        "speedup_fig07": measured["speedup_fig07"],
        "regression_tolerance": REGRESSION_TOLERANCE,
        "note": ("events/s divides logical events (dispatched + elided "
                 "tx-dones; identical across engines) by wall seconds. "
                 "--check compares speedup ratios, not absolute events/s: "
                 "ratios survive hardware changes. See BENCH_engine.md."),
    }


def run(full: bool = False, rounds: int = 3) -> tuple[str, list[str]]:
    """Return the report text and a list of failures (empty = pass)."""
    failures = _determinism_failures()
    measured = measure(rounds=rounds)

    rows = []
    for engine in ("heap", "calendar"):
        m = measured[engine]
        rows.append({
            "engine": engine,
            "raw chain ev/s": f"{m['raw_chain_events_per_s']:,.0f}",
            "fig07 events": f"{m['fig07_events']:,}",
            "fig07 wall_s": f"{m['fig07_wall_s']:.3f}",
            "fig07 ev/s": f"{m['fig07_events_per_s']:,.0f}",
        })
    text = format_table(
        rows,
        title=f"engine speed (best of {rounds} fresh-process rounds, interleaved)")
    text += (
        f"\nspeedup: raw chain {measured['speedup_raw_chain']:.2f}x, "
        f"fig07 incast K=8 {measured['speedup_fig07']:.2f}x (calendar vs heap)"
    )
    text += "\ndeterminism (engine A/A, serial==parallel pooled): " + (
        "ok" if not failures else "; ".join(failures))

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        committed = baseline["speedup_fig07"]
        floor = committed * (1 - REGRESSION_TOLERANCE)
        text += (
            f"\nbaseline fig07 speedup {committed:.2f}x "
            f"(gate: live >= {floor:.2f}x)"
        )
        if measured["speedup_fig07"] < floor:
            failures.append(
                f"fig07 speedup regressed: live {measured['speedup_fig07']:.2f}x "
                f"< {floor:.2f}x ({100 * REGRESSION_TOLERANCE:.0f}% below the "
                f"committed {committed:.2f}x)"
            )
    else:
        text += "\nno BENCH_engine.json baseline committed — speed gate skipped"

    if full:
        smoke, smoke_failures = _full_smoke()
        failures.extend(smoke_failures)
        text += (
            f"\nK=8 smoke (128 hosts, calendar): {smoke['events']:,} events "
            f"in {smoke['wall_s']:.2f}s wall = {smoke['events_per_s']:,.0f} ev/s"
            f"; engine A/A at K=8: "
            + ("ok" if not smoke_failures else "; ".join(smoke_failures))
        )

    return text, failures


def main() -> int:
    parser = argparse.ArgumentParser(description="Benchmark the event engine")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per arm (interleaved; best reported)")
    parser.add_argument("--full", action="store_true",
                        help="also run the paper-scale K=8 / 128-host smoke")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on determinism or speed-gate failure (CI mode)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite BENCH_engine.json from this run's measurements")
    parser.add_argument("--worker", choices=("raw", "fig07"),
                        help=argparse.SUPPRESS)  # internal: one timed sample
    parser.add_argument("--engine", choices=tuple(_ENGINES),
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.worker:
        if not args.engine:
            parser.error("--worker requires --engine")
        with _engine_env(args.engine):
            return _worker_main(args.worker, args.engine)

    if args.update_baseline:
        failures = _determinism_failures()
        if failures:
            for failure in failures:
                print(f"REFUSING BASELINE UPDATE: {failure}", file=sys.stderr)
            return 1
        measured = measure(rounds=args.rounds)
        BASELINE_PATH.write_text(
            json.dumps(_baseline_payload(measured), indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        print(json.dumps(measured, indent=2))
        return 0

    text, failures = run(full=args.full, rounds=args.rounds)
    common.save_table("bench_engine_speed", text)
    print(text)
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
