"""Shared plumbing for the figure benchmarks.

Every ``bench_*.py`` regenerates one paper artifact.  Conventions:

* each file exposes ``run(full: bool) -> str`` returning the formatted
  table(s) for that figure — ``full=False`` (default) uses the scaled
  parameters documented in DESIGN.md §7, ``full=True`` uses the paper's
  Table 1/2 values (hours of CPython time; for completeness),
* the pytest-benchmark entry point wraps ``run(False)`` so ``pytest
  benchmarks/ --benchmark-only`` both times the experiment and persists the
  tables under ``benchmarks/results/``,
* ``python benchmarks/bench_figNN_*.py [--full]`` prints the same tables.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Scaled counterparts of the paper's three workload intensities (Fig. 4/14):
# 300 / 2000 / 10000 qps over 128 hosts ~= 40 / 250 / 1250 qps over 16.
SCALED_BASELINE_QPS = 40.0
SCALED_HEAVY_QPS = 250.0
SCALED_EXTREME_QPS = 1250.0


def save_table(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/ and return the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def bench_entry(benchmark, name: str, run_fn) -> None:
    """Standard pytest-benchmark wrapper: one timed round, table persisted."""
    text = benchmark.pedantic(run_fn, rounds=1, iterations=1)
    save_table(name, text)
    print()
    print(text)


def cli_main(name: str, run_fn) -> None:
    """Standard ``python bench_x.py [--full] [--workers N]`` entry point.

    ``--workers`` is forwarded only to benches whose ``run`` accepts it
    (the sweep-heavy ones fan their grid out across worker processes).
    Benches whose ``run`` accepts ``journal_dir`` additionally get
    ``--journal-dir DIR`` / ``--resume``: the sweep grid is checkpointed
    per (cell, seed) run and an interrupted bench rerun with ``--resume``
    produces the identical table without redoing completed cells.
    """
    parser = argparse.ArgumentParser(description=f"Regenerate {name}")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full-scale parameters (slow)")
    kwargs = {}
    params = inspect.signature(run_fn).parameters
    accepts_workers = "workers" in params
    accepts_journal = "journal_dir" in params
    if accepts_workers:
        parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for the sweep grid (1 = serial)")
    if accepts_journal:
        parser.add_argument("--journal-dir", default=None, dest="journal_dir",
                            metavar="DIR",
                            help="checkpoint completed runs into DIR "
                                 "(atomic per-cell journal; see repro.experiments.journal)")
        parser.add_argument("--resume", action="store_true",
                            help="skip runs already journaled in --journal-dir")
    args = parser.parse_args()
    if accepts_workers:
        kwargs["workers"] = args.workers
    if accepts_journal:
        kwargs["journal_dir"] = args.journal_dir
        kwargs["resume"] = args.resume
    text = run_fn(full=args.full, **kwargs)
    save_table(name + ("-full" if args.full else ""), text)
    print(text)
    sys.stdout.flush()
