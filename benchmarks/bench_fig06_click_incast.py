"""Figure 6 — the Click-testbed incast experiment (§5.2).

Five servers each send ten simultaneous 32 KB flows to the last server on
the 5-switch testbed topology.  Three settings: infinite buffers, 100-pkt
droptail, and 100-pkt droptail with DIBS (fast retransmit disabled).

Paper numbers: infinite completes all queries by 25 ms, DIBS by 27 ms,
droptail stretches out to 51 ms because ~9% of flows hit a retransmission
timeout.  The experiment is repeated over several seeds (the paper ran 50
trials).
"""

from repro.core.config import DibsConfig
from repro.experiments.report import format_table
from repro.metrics.stats import percentile
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import click_testbed
from repro.transport.base import TcpConfig

import common

NAME = "fig06_click_incast"

SETTINGS = {
    "InfiniteBuf": dict(
        queues=SwitchQueueConfig(discipline="infinite", infinite_with_ecn=False),
        dibs=False,
        tcp=TcpConfig(),
    ),
    "Droptail100": dict(
        queues=SwitchQueueConfig(discipline="droptail", buffer_pkts=100),
        dibs=False,
        tcp=TcpConfig(),
    ),
    "Detour": dict(
        queues=SwitchQueueConfig(discipline="droptail", buffer_pkts=100),
        dibs=True,
        tcp=TcpConfig(fast_retransmit_threshold=None),
    ),
}


def _one_trial(setting: str, seed: int):
    cfg = SETTINGS[setting]
    net = Network(
        click_testbed(),
        switch_queues=cfg["queues"],
        dibs=DibsConfig() if cfg["dibs"] else DibsConfig.disabled(),
        seed=seed,
    )
    flows = []
    for sender in range(5):
        for _ in range(10):
            flows.append(net.start_flow(f"host_{sender}", "host_5", 32_000,
                                        transport=cfg["tcp"], kind="query"))
    net.run(until=5.0)
    assert all(f.completed for f in flows)
    qct = max(f.receiver_done_time for f in flows)
    return qct, [f.fct for f in flows], net.total_drops(), net.total_detours()


def run(full: bool = False) -> str:
    trials = 50 if full else 10
    rows = []
    for setting in SETTINGS:
        qcts, all_fcts, drops, detours = [], [], 0, 0
        for seed in range(trials):
            qct, fcts, d, det = _one_trial(setting, seed)
            qcts.append(qct)
            all_fcts.extend(fcts)
            drops += d
            detours += det
        rows.append(
            {
                "setting": setting,
                "trials": trials,
                "qct_min_ms": f"{min(qcts) * 1e3:.1f}",
                "qct_max_ms": f"{max(qcts) * 1e3:.1f}",
                "flow_p50_ms": f"{percentile(all_fcts, 50) * 1e3:.1f}",
                "flow_p99_ms": f"{percentile(all_fcts, 99) * 1e3:.1f}",
                "flows_over_25ms": sum(1 for f in all_fcts if f > 0.025),
                "drops": drops,
                "detours": detours,
            }
        )
    title = (
        "Figure 6: testbed incast (5 senders x 10 flows x 32KB -> 1 receiver).\n"
        "Paper shape: InfiniteBuf ~25ms, Detour ~27ms (no drops/timeouts),\n"
        "Droptail100 up to ~51ms with ~9% of flows delayed by RTOs."
    )
    return format_table(rows, title=title)


def test_fig06_click_incast(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
