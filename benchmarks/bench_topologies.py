"""§7 quantified — DIBS across topologies.

The paper's discussion section argues detouring quality tracks neighbor
richness: fat-tree and HyperX offer many detour options; Jellyfish's
random graph puts more switches near any destination; a linear chain only
allows backward detours yet still functions (footnote 10).  This bench
runs the same proportional incast on each topology with DIBS on/off.
"""

from repro.core.config import DibsConfig
from repro.experiments.report import format_table
from repro.metrics.stats import percentile
from repro.net.network import Network, SwitchQueueConfig
from repro.topo import fat_tree, jellyfish, leaf_spine, linear
from repro.topo.hyperx import hyperx
from repro.transport.base import dibs_host_config

import common

NAME = "topologies"

TOPOLOGIES = [
    ("fat-tree k=4", lambda: fat_tree(k=4)),
    ("leaf-spine 4x2", lambda: leaf_spine(leaves=4, spines=2, hosts_per_leaf=4)),
    ("jellyfish 16x3", lambda: jellyfish(switches=16, fabric_degree=3, hosts_per_switch=1, seed=7)),
    ("hyperx 4x4", lambda: hyperx((4, 4), hosts_per_switch=1)),
    ("linear chain 4sw", lambda: linear(switches=4, hosts_per_switch=4)),
]


def _run(topo_factory, dibs: bool, trials: int = 5):
    qcts, drops, detours = [], 0, 0
    for seed in range(trials):
        net = Network(
            topo_factory(),
            switch_queues=SwitchQueueConfig(buffer_pkts=10, ecn_threshold_pkts=4),
            dibs=DibsConfig() if dibs else DibsConfig.disabled(),
            seed=seed,
        )
        cfg = dibs_host_config() if dibs else "dctcp"
        senders = [h.name for h in net.hosts[1:13]]
        flows = [
            net.start_flow(s, net.hosts[0].name, 20_000, transport=cfg, kind="query")
            for s in senders
        ]
        net.run(until=5.0)
        done = [f for f in flows if f.completed]
        if len(done) == len(flows):
            qcts.append(max(f.receiver_done_time for f in flows))
        drops += net.total_drops()
        detours += net.total_detours()
    return qcts, drops, detours


def run(full: bool = False) -> str:
    trials = 20 if full else 5
    rows = []
    for label, factory in TOPOLOGIES:
        topo = factory()
        no_qcts, no_drops, _ = _run(factory, dibs=False, trials=trials)
        yes_qcts, yes_drops, yes_detours = _run(factory, dibs=True, trials=trials)
        rows.append(
            {
                "topology": label,
                "diameter": topo.diameter(),
                "dctcp:qct_p99_ms": f"{percentile(no_qcts, 99) * 1e3:.1f}" if no_qcts else "-",
                "dctcp:drops": no_drops,
                "dibs:qct_p99_ms": f"{percentile(yes_qcts, 99) * 1e3:.1f}" if yes_qcts else "-",
                "dibs:drops": yes_drops,
                "dibs:detours": yes_detours,
            }
        )
    title = (
        "Section 7: the same 12-way incast on five topologies (10-pkt buffers).\n"
        "Expected shape: DIBS wins everywhere; richly connected fabrics\n"
        "(fat-tree, HyperX, Jellyfish) absorb the burst losslessly, while\n"
        "the linear chain still works but must drop more (backward-only\n"
        "detours share one path with the traffic)."
    )
    return format_table(rows, title=title)


def test_topologies(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
