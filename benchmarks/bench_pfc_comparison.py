"""§6 comparison — DIBS vs hop-by-hop Ethernet flow control (PAUSE/PFC).

The paper's closest mechanistic relative: PFC also shares buffers between
switches (by parking packets upstream), also avoids loss, but (a) pauses
indiscriminately — innocent traffic through a paused link stalls
(head-of-line blocking), (b) needs threshold tuning, and (c) risks pause
cascades/deadlock cycles (here broken by PAUSE expiry, as in real gear).
This bench runs the default mixed workload under DCTCP, DCTCP+PFC, and
DCTCP+DIBS and reports loss, latency, and how far the pause cascade spread.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_pooled
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

import common

NAME = "pfc_comparison"


def _host_pauses(scenario) -> int:
    """Re-run the scenario's workload counting PAUSE frames hitting NICs."""
    net = scenario.build_network()
    transport = scenario.transport_config()
    BackgroundTraffic(net, scenario.bg_interarrival_s, web_search_background(),
                      transport=transport, stop_at=scenario.duration_s).start()
    QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                 transport=transport, stop_at=scenario.duration_s).start()
    net.run(until=scenario.duration_s + scenario.drain_s)
    return sum(h.nic.pauses_received for h in net.hosts)


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="pfc",
    )
    rows = []
    for scheme in ("dctcp", "dctcp-pfc", "dibs"):
        scenario = base.with_overrides(scheme=scheme, name=f"pfc:{scheme}")
        result = run_pooled(scenario, seeds=(0, 1))
        qct = result.qct_p99_ms
        fct = result.bg_fct_p99_ms
        rows.append(
            {
                "scheme": scheme,
                "qct_p99_ms": f"{qct:.2f}" if qct is not None else "-",
                "bg_fct_p99_ms": f"{fct:.2f}" if fct is not None else "-",
                "drops": result.total_drops,
                "detours": result.detours,
                "host_nic_pauses": _host_pauses(scenario) if scheme == "dctcp-pfc" else 0,
            }
        )
    title = (
        "Section 6: DIBS vs Ethernet flow control (802.3x PAUSE, timed).\n"
        "Expected shape: both PFC and DIBS nearly eliminate loss; PFC's\n"
        "pause cascade reaches host NICs (indiscriminate back-pressure,\n"
        "head-of-line blocking) while DIBS touches only detoured packets."
    )
    return format_table(rows, title=title)


def test_pfc_comparison(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
