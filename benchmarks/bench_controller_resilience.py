"""Controller resilience — hostile-regime grid: controlled vs static DIBS.

The space-DC scenario family (repro.experiments.scenarios.space_dc) is
deliberately hostile to every static mitigation setting: 50 Mbps links
with ~200 ms base RTT and seeded propagation jitter, Poisson link
outages (~1 s handover blackouts), and a diurnal background swing that
makes the load the mitigation was tuned for wrong half the run.  The
flap-storm variant is the pathological cell for DIBS itself: 2
flaps/link/s with 5 ms downtime keeps shrinking the detour mask, so the
surviving links absorb everyone's detour load — the regime where
detouring must *fail soft* rather than melt the neighborhood down.

This bench runs the grid {space-outage, flap-storm} x {DCTCP, static
DIBS, controlled DIBS} and reports tail QCT, drops, detours, and the
runtime controller's own counters (breaker trips / re-arms, degraded
ticks, retunes).  Every run executes with the livelock watchdog armed
and periodic conservation audits; a watchdog or invariant abort would
surface as a failed run in the telemetry footer.

The controlled arm runs a *per-regime* spec, the way a real deployment
would tune its control loop.  The space cell uses the defaults: slow
outages plus a diurnal swing give the hysteresis bands real load shifts
to track, so ECN/detour-budget/DBA retunes fire alongside the breaker.
The flap-storm cell uses a breaker-lean spec (watermarks parked high):
storm tails are dominated by RTO alignment after blackouts, so knob
retunes there are pure trajectory noise — the breaker shedding detour
storms is the mechanism that helps, and on seeds where it never trips
the controlled run stays bit-identical to static (actuation, not
observation, is the only thing that can change a trajectory).

Expected shape: the controlled-DIBS column matches or beats static DIBS
on the flap-storm cell, and the controller counters prove the
degradation machinery actually cycled — trips *and* re-arms, never a
permanently wedged breaker.

``--check`` gates (the CI leg):

* no failed runs anywhere in the grid (watchdog + invariants stayed quiet);
* the breaker tripped AND re-armed on both controlled cells;
* the controller retuned at least one knob on the space cell;
* controlled-DIBS p99 QCT <= static-DIBS p99 QCT on the flap-storm cell.
"""

from __future__ import annotations

import argparse
import sys

from repro.control.spec import ControllerSpec
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunTelemetry, run_grid
from repro.experiments.report import format_table
from repro.experiments.scenarios import flap_storm, space_dc

import common

NAME = "controller_resilience"

# Per-regime controller specs for the controlled arm.  Space: defaults
# (full loop — hysteresis retunes + breaker).  Storm: breaker-lean —
# hysteresis watermarks parked so high the retune path never fires and
# the circuit breaker is the only active mechanism.
SPACE_CTL_SPEC = ControllerSpec()
STORM_CTL_SPEC = ControllerSpec(
    drop_rate_high=0.9, drop_rate_low=0.0,
    occupancy_high=0.99, occupancy_low=0.0,
)
CTL_SPECS = {"space": SPACE_CTL_SPEC, "storm": STORM_CTL_SPEC}

REGIMES = (("space", "space-DC outages"), ("storm", "flap storm"))
VARIANTS = (
    ("dctcp", "DCTCP"),
    ("dibs", "DIBS static"),
    ("dibs-ctl", "DIBS controlled"),
)

SEEDS = tuple(range(8))
SEEDS_FULL = tuple(range(16))


def build_cells(full: bool = False) -> dict:
    """The (regime, variant) -> Scenario grid.

    ``full`` widens the seed pool only (see SEEDS_FULL); the simulated
    horizon stays at the scenario-family defaults, which already span
    several outage/flap cycles and one diurnal swing per run.
    """
    overrides = {"invariant_check_interval_s": 0.1}
    cells = {}
    for regime, factory in (("space", space_dc), ("storm", flap_storm)):
        for variant, _label in VARIANTS:
            scheme = "dctcp" if variant == "dctcp" else "dibs"
            controlled = variant == "dibs-ctl"
            cells[(regime, variant)] = factory(
                scheme,
                controller=controlled,
                controller_spec=CTL_SPECS[regime].to_json_text() if controlled else None,
                name=f"ctlres:{regime}:{variant}",
                **overrides,
            )
    return cells


def _fmt_ms(value) -> str:
    return f"{value:.1f}" if value is not None else "-"


def _run_grid(full: bool, workers: int, journal_dir, resume):
    cells = build_cells(full)
    telemetry = RunTelemetry()
    journal = RunJournal(journal_dir) if journal_dir else None
    results = run_grid(
        cells,
        seeds=SEEDS_FULL if full else SEEDS,
        workers=workers,
        telemetry=telemetry,
        journal=journal,
        resume=resume,
    )
    return results, telemetry


def _render(results, telemetry) -> str:
    rows = []
    for regime, regime_label in REGIMES:
        row = {"regime": regime_label}
        for variant, label in VARIANTS:
            result = results.get((regime, variant))
            if result is None:  # permanently failed run (see telemetry)
                row[f"{label} qct_p99_ms"] = "!"
                continue
            row[f"{label} qct_p99_ms"] = _fmt_ms(result.qct_p99_ms)
            row[f"{label} drops"] = result.total_drops
            if variant != "dctcp":
                row[f"{label} detours"] = result.detours
            if variant == "dibs-ctl":
                stats = result.controller_stats
                row["trips/rearms"] = (
                    f"{stats.get('breaker_trips', 0)}/{stats.get('breaker_rearms', 0)}"
                )
                row["degraded_ticks"] = stats.get("degraded_ticks", 0)
                row["retunes"] = stats.get("retunes_total", 0)
        rows.append(row)
    title = (
        "Controller resilience: hostile regimes, controlled vs static DIBS.\n"
        "space-DC: 50 Mbps / ~200 ms RTT jittered links, ~1 s Poisson\n"
        "outages, diurnal background swing.  flap storm: 2 flaps/link/s\n"
        "with 5 ms downtime — the detour-mask-churn worst case.\n"
        "Expected shape: controlled DIBS matches or beats static DIBS on\n"
        "the flap-storm cell, and its breaker counters show trips AND\n"
        "re-arms (degradation cycles; it never wedges).  All runs execute\n"
        "with the livelock watchdog armed and periodic conservation audits."
    )
    resilience = (
        f"resilience: retries {telemetry.retries}"
        f" | backoff waits {telemetry.backoff_waits} ({telemetry.backoff_total_s:.2f}s)"
        f" | timeout escalations {telemetry.timeout_escalations}"
        f" | cells resumed {telemetry.cells_resumed}, journaled {telemetry.cells_journaled}"
        f" | interrupted {telemetry.interrupted}"
    )
    return format_table(rows, title=title) + "\n\n" + telemetry.summary() + "\n" + resilience


def check(results, telemetry) -> list[str]:
    """The ``--check`` gate: returns human-readable failures (empty = pass)."""
    problems = []
    if telemetry.runs_failed:
        problems.append(
            f"{telemetry.runs_failed} run(s) failed permanently: "
            + "; ".join(f"{f.key}: {f.reason}" for f in telemetry.failures)
        )
    for regime, _label in REGIMES:
        ctl = results.get((regime, "dibs-ctl"))
        if ctl is None:
            problems.append(f"controlled cell missing for regime {regime!r}")
            continue
        stats = ctl.controller_stats
        if not stats.get("breaker_trips"):
            problems.append(f"[{regime}] breaker never tripped (counters: {stats})")
        if not stats.get("breaker_rearms"):
            problems.append(f"[{regime}] breaker never re-armed (counters: {stats})")
        if regime == "space" and not stats.get("retunes_total"):
            problems.append(f"[{regime}] controller never retuned a knob ({stats})")
    static = results.get(("storm", "dibs"))
    controlled = results.get(("storm", "dibs-ctl"))
    if static is not None and controlled is not None:
        s_p99, c_p99 = static.qct_p99_ms, controlled.qct_p99_ms
        if s_p99 is None or c_p99 is None:
            problems.append("flap-storm cells produced no completed queries")
        elif c_p99 > s_p99:
            problems.append(
                f"controlled DIBS p99 QCT regressed vs static on the flap-storm "
                f"cell: {c_p99:.1f} ms > {s_p99:.1f} ms"
            )
    return problems


def run(full: bool = False, workers: int = 1,
        journal_dir: str | None = None, resume: bool = False) -> str:
    results, telemetry = _run_grid(full, workers, journal_dir, resume)
    return _render(results, telemetry)


def test_controller_resilience(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the controller-resilience grid"
    )
    parser.add_argument("--full", action="store_true",
                        help="full scenario-family horizons and more seeds (slow)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the grid (1 = serial)")
    parser.add_argument("--journal-dir", default=None, dest="journal_dir", metavar="DIR",
                        help="checkpoint completed runs into DIR")
    parser.add_argument("--resume", action="store_true",
                        help="skip runs already journaled in --journal-dir")
    parser.add_argument("--check", action="store_true",
                        help="enforce the graceful-degradation gates "
                             "(breaker cycled, no aborts, controlled p99 <= "
                             "static p99 on the flap-storm cell)")
    args = parser.parse_args()
    results, telemetry = _run_grid(args.full, args.workers, args.journal_dir, args.resume)
    text = _render(results, telemetry)
    common.save_table(NAME + ("-full" if args.full else ""), text)
    print(text)
    if args.check:
        problems = check(results, telemetry)
        if problems:
            print("\n--check FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  * {problem}", file=sys.stderr)
            return 1
        print("\n--check passed: no aborts, breaker cycled, "
              "controlled p99 <= static p99 on the flap-storm cell")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
