"""Cross-scheme shootout: DIBS vs the modern buffer-sharing competitors.

The 2014 paper could not compare detour-instead-of-drop against designs
published after it; ROADMAP item 4 asks for exactly that table.  Three
scenario families x six schemes x 8 seeds (2 in the default smoke mode):

* **incast** — the fig. 7 operating point (partition-aggregate incast
  over background traffic) on the scaled K=4 fat-tree,
* **faultgrid** — the same point with two core-agg links dead from t=0
  (the bench_fault_resilience regime: less bisection *and* less detour
  capacity),
* **flapstorm** — the space-DC flap storm (frequent short outages on a
  slow, jittery leaf-spine), DIBS's pathological regime.

Schemes: ``dctcp`` and ``dibs`` (the paper's headline pair), ``dibs-dba``
(DIBS over shared memory), and the competitor pack — ``bshare``
(delay-driven buffer sharing), ``fairq`` (switch-assisted fair rates),
``tinybuf`` (Tiny-Buffer TCP over 8-16-pkt queues).

Reported per cell: p50/p99 QCT, p99 background FCT, drops, detours, and
Jain fairness across per-query completion rates.  Every run executes with
periodic conservation audits armed, so a buffer-accounting bug in any
scheme (the BShare pool is the newest suspect) fails the run instead of
quietly skewing the table.

``--check`` gates (the CI leg):

* every cell produced a result — zero invariant/watchdog aborts,
* every cell's periodic audits actually ran,
* dibs p99 QCT <= dctcp p99 QCT on the incast family (the paper's core
  claim must survive in the presence of the new competitors).
"""

import argparse
import sys

from repro.experiments import SCALED_DEFAULTS
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunTelemetry, run_grid
from repro.experiments.report import format_table
from repro.experiments.scenarios import flap_storm
from repro.faults import LINK_DOWN
from repro.metrics.stats import jain_index, percentile

import common

NAME = "scheme_shootout"

SCHEMES = ("dctcp", "dibs", "dibs-dba", "bshare", "fairq", "tinybuf")
FAMILIES = ("incast", "faultgrid", "flapstorm")


def _dead_core_links(topology, n: int) -> tuple[tuple[str, str], ...]:
    """``n`` core-agg links on distinct agg and core switches (greedy over
    topology order), so the fabric stays connected."""
    used: set[str] = set()
    picked: list[tuple[str, str]] = []
    for link in topology.links:
        if len(picked) == n:
            break
        if not (link.node_a.startswith("agg_") and link.node_b.startswith("core_")):
            continue
        if link.node_a in used or link.node_b in used:
            continue
        picked.append((link.node_a, link.node_b))
        used.update((link.node_a, link.node_b))
    if len(picked) < n:
        raise ValueError(f"too few spread core links for {n} failures")
    return tuple(picked)


def _family_bases(full: bool) -> dict:
    base = SCALED_DEFAULTS.with_overrides(invariant_check_interval_s=0.05)
    incast = base.with_overrides(duration_s=0.4 if full else 0.15)
    faults = tuple(
        (0.0, LINK_DOWN, agg, core, 1)
        for agg, core in _dead_core_links(base.build_topology(), 2)
    )
    faultgrid = incast.with_overrides(faults=faults)
    storm = flap_storm(
        duration_s=1.0 if full else 0.3,
        drain_s=2.0 if full else 1.0,
        invariant_check_interval_s=0.05,
    )
    return {"incast": incast, "faultgrid": faultgrid, "flapstorm": storm}


def _run_shootout(full: bool, workers: int, journal_dir, resume: bool):
    seeds = tuple(range(8)) if full else (0, 1)
    bases = _family_bases(full)
    cells = {
        (family, scheme): bases[family].with_overrides(
            scheme=scheme, name=f"shootout:{family}:{scheme}"
        )
        for family in FAMILIES
        for scheme in SCHEMES
    }
    telemetry = RunTelemetry()
    journal = RunJournal(journal_dir) if journal_dir else None
    results = run_grid(cells, seeds=seeds, workers=workers, telemetry=telemetry,
                       journal=journal, resume=resume)
    return results, telemetry, seeds


def _render(results, telemetry, seeds) -> str:
    rows = []
    for family in FAMILIES:
        for scheme in SCHEMES:
            result = results.get((family, scheme))
            row = {"family": family, "scheme": scheme}
            if result is None:  # permanently failed run (see telemetry)
                row["qct_p99_ms"] = "!"
                rows.append(row)
                continue
            qct = result.qct_values
            row["qct_p50_ms"] = f"{percentile(qct, 50) * 1e3:.2f}" if qct else "-"
            row["qct_p99_ms"] = f"{percentile(qct, 99) * 1e3:.2f}" if qct else "-"
            bg = result.bg_fct_p99_ms
            row["bg_p99_ms"] = f"{bg:.2f}" if bg is not None else "-"
            row["drops"] = result.total_drops
            row["detours"] = result.detours
            # Fairness across queries: Jain's index over per-query
            # completion rates (1/QCT) — 1.0 means every incast query saw
            # the same service, a hogging scheme drives it toward 1/n.
            row["jain"] = f"{jain_index([1.0 / q for q in qct]):.3f}" if qct else "-"
            row["queries"] = f"{result.queries_completed}/{result.queries_started}"
            row["audits"] = result.invariant_checks
            rows.append(row)
    title = (
        "Cross-scheme shootout: DIBS vs modern buffer sharing (ROADMAP item 4).\n"
        f"{len(FAMILIES)} families x {len(SCHEMES)} schemes x {len(seeds)} seeds; "
        "conservation audits armed on every run.\n"
        "Expected shape: dibs/dibs-dba and bshare absorb the incast burst\n"
        "(low drops) while dctcp drops and tinybuf drops-but-recovers-fast;\n"
        "on the flap storm the detour schemes pay for shrinking detour masks."
    )
    return format_table(rows, title=title) + "\n\n" + telemetry.summary()


def check(results, telemetry) -> list[str]:
    """The ``--check`` gate: returns human-readable failures (empty = pass)."""
    problems = []
    for failure in telemetry.failures:
        problems.append(f"run failed permanently: {failure}")
    for family in FAMILIES:
        for scheme in SCHEMES:
            result = results.get((family, scheme))
            if result is None:
                problems.append(f"({family}, {scheme}) produced no result")
                continue
            if result.invariant_checks <= 0:
                problems.append(f"({family}, {scheme}) ran zero conservation audits")
            # The flap storm deliberately black-holes whole RTO cycles; on
            # the short smoke horizon even good schemes may finish no query
            # there, so the completion gate covers the drained families.
            if (family != "flapstorm"
                    and result.queries_started and not result.queries_completed):
                problems.append(f"({family}, {scheme}) completed no queries")
    dibs = results.get(("incast", "dibs"))
    dctcp = results.get(("incast", "dctcp"))
    if dibs is not None and dctcp is not None:
        if dibs.qct_p99_ms is None or dctcp.qct_p99_ms is None:
            problems.append("incast cells produced no QCT samples")
        elif dibs.qct_p99_ms > dctcp.qct_p99_ms:
            problems.append(
                f"dibs p99 QCT {dibs.qct_p99_ms:.2f} ms exceeds "
                f"dctcp {dctcp.qct_p99_ms:.2f} ms on the incast family"
            )
    return problems


def run(full: bool = False, workers: int = 1,
        journal_dir: str | None = None, resume: bool = False) -> str:
    results, telemetry, seeds = _run_shootout(full, workers, journal_dir, resume)
    return _render(results, telemetry, seeds)


def test_scheme_shootout(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the cross-scheme shootout table"
    )
    parser.add_argument("--full", action="store_true",
                        help="8 seeds and full horizons (slow; the committed table)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the grid (1 = serial)")
    parser.add_argument("--journal-dir", default=None, dest="journal_dir", metavar="DIR",
                        help="checkpoint completed runs into DIR")
    parser.add_argument("--resume", action="store_true",
                        help="skip runs already journaled in --journal-dir")
    parser.add_argument("--check", action="store_true",
                        help="enforce the shootout gates (no aborts, audits ran, "
                             "dibs p99 <= dctcp p99 on incast)")
    args = parser.parse_args()
    results, telemetry, seeds = _run_shootout(
        args.full, args.workers, args.journal_dir, args.resume
    )
    text = _render(results, telemetry, seeds)
    common.save_table(NAME + ("-full" if args.full else ""), text)
    print(text)
    if args.check:
        problems = check(results, telemetry)
        if problems:
            print("\n--check FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  * {problem}", file=sys.stderr)
            return 1
        print("\n--check passed: no aborts, audits ran on every cell, "
              "dibs p99 <= dctcp p99 on incast")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
