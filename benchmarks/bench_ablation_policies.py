"""Ablation (§7/§8) — detour policy comparison.

The paper evaluates only the parameter-free random policy and sketches
load-aware / flow-based / probabilistic variants as future work.  This
bench runs all four on the default incast workload so the design choice is
quantified: load-aware should match or beat random slightly; flow-based
trades buffer spreading for fewer reorderings; probabilistic detours early.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "ablation_detour_policies"

POLICIES = ["random", "load-aware", "flow-based", "probabilistic"]


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs", duration_s=1.0 if full else 0.2, name="policies",
    )
    rows = []
    for policy in POLICIES:
        result = run_scenario(base.with_overrides(detour_policy=policy,
                                                  name=f"policies:{policy}"))
        qct = result.qct_p99_ms
        fct = result.bg_fct_p99_ms
        rows.append(
            {
                "policy": policy,
                "qct_p99_ms": f"{qct:.2f}" if qct is not None else "-",
                "bg_fct_p99_ms": f"{fct:.2f}" if fct is not None else "-",
                "detours": result.detours,
                "drops": result.total_drops,
                "timeouts": result.timeouts,
            }
        )
    title = (
        "Ablation: DIBS detour policies (§7) on the default incast workload.\n"
        "The paper ships 'random' for its zero parameters; this quantifies\n"
        "what the alternatives buy."
    )
    return format_table(rows, title=title)


def test_ablation_policies(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
