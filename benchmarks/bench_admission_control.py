"""§7 extension — host admission control rescues the Figure-14 overload.

The paper: "we still need admission control at the hosts to prevent
applications from sending too many intensive short flows."  This bench
offers queries at a rate past DIBS's breaking point and releases them
through a cluster-wide token bucket at progressively lower admitted rates,
showing p99 QCT of *admitted* queries recovering as the bucket tightens.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.metrics.stats import percentile
from repro.workload.admission import AdmittedQueryTraffic
from repro.workload.query import QueryTraffic

import common

NAME = "admission_control"


def _run(scenario, admit_qps):
    net = scenario.build_network()
    transport = scenario.transport_config()
    query = QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                         transport=transport, stop_at=scenario.duration_s)
    gated = None
    if admit_qps is not None:
        gated = AdmittedQueryTraffic(query, admit_qps=admit_qps, burst=2)
        gated.start()
    else:
        query.start()
    net.run(until=scenario.duration_s + scenario.drain_s)
    qcts = net.collector.qct_values()
    return {
        "admitted_qps": admit_qps if admit_qps is not None else "unlimited",
        "queries": f"{sum(1 for q in net.collector.queries if q.completed)}/{query.queries_started}",
        "qct_p99_ms": f"{percentile(qcts, 99) * 1e3:.1f}" if qcts else "-",
        "drops": net.total_drops(),
        "detours": net.total_detours(),
        "delayed": gated.controller.delayed if gated else 0,
    }


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs",
        # Offer load past the break point; TTL 48 bounds detour loops.
        qps=12_000 if full else 2_500,
        ttl=48,
        duration_s=0.3 if full else 0.04,
        drain_s=1.0 if full else 0.6,
        bg_enabled=False,
        name="admission",
    )
    rows = []
    for admit in (None, 2000 if full else 500, 1000 if full else 250, 300 if full else 100):
        rows.append(_run(base, admit))
    title = (
        "Section 7 extension: token-bucket admission at the hosts.\n"
        "Expected shape: the overloaded (unlimited) point shows the Fig. 14\n"
        "collapse; tightening admission restores per-query latency and cuts\n"
        "drops, at the cost of queueing queries before the network."
    )
    return format_table(rows, title=title)


def test_admission_control(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
