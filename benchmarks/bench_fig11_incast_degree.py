"""Figure 11 — variable incast degree.

Sweeps the number of responders per query (paper: 40-100 of 128 hosts;
scaled: 6-15 of 16).  Paper shape: DIBS's improvement *grows* with incast
degree (22 ms at degree 40, 33 ms at 100) because higher degree means a
burstier first-RTT aggregate; and for equal total response bytes, many
senders hurts DCTCP far more than large responses do (cf. Figure 10).
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig11_incast_degree"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.120, name="fig11",
    )
    values = [40, 60, 80, 100] if full else [6, 9, 12, 15]
    results = sweep(base, "incast_degree", values, schemes=("dctcp", "dibs"), seeds=(0, 1, 2))
    title = (
        "Figure 11: QCT / background FCT vs incast degree (responders).\n"
        "Paper shape: the DIBS-vs-DCTCP qct_p99 gap widens as the degree\n"
        "rises; background impact stays small."
    )
    return format_sweep(results, "incast_degree", title=title)


def test_fig11_incast_degree(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
