"""§5.5.2 — shared-memory switches with Dynamic Buffer Allocation.

Models a DBA switch (paper: Arista 7050QX-style, shared packet memory
drawn on demand by the ports).  Paper shape: with DBA, moderate incast is
absorbed by the shared pool — DCTCP sees zero loss and DIBS never
triggers.  Push the burst past the pool size and DCTCP+DBA starts dropping
(QCT jumps), while DIBS+DBA still detours instead and keeps zero loss.

Scaled pool: the paper's 1.7 MB pool vs 40x10-pkt bursts becomes a 260 KB
pool vs 12x10-pkt (180 KB) bursts, overflowed by raising the response size.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "dba_shared_buffer"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=0.5 if full else 0.15,
        drain_s=1.0 if full else 0.6,
        bg_interarrival_s=0.120,
        dba_total_bytes=1_700_000 if full else 260_000,
        name="dba",
    )
    # (incast degree, response size): moderate fits the pool, extreme overflows it.
    points = (
        [(40, 20_000), (100, 20_000), (150, 20_000), (150, 100_000)]
        if full
        else [(6, 20_000), (12, 20_000), (15, 20_000), (15, 120_000)]
    )
    rows = []
    for degree, response in points:
        row = {"incast_degree": degree, "response_bytes": response}
        for scheme in ("dctcp-dba", "dibs-dba"):
            result = run_scenario(base.with_overrides(
                scheme=scheme, incast_degree=degree, response_bytes=response,
                name=f"dba:{scheme}:{degree}:{response}",
            ))
            qct = result.qct_p99_ms
            row[f"{scheme}:qct_p99_ms"] = f"{qct:.1f}" if qct is not None else "-"
            row[f"{scheme}:drops"] = result.total_drops
            row[f"{scheme}:detours"] = result.detours
        rows.append(row)
    title = (
        "Section 5.5.2: shared-buffer (DBA) switches.\n"
        "Paper shape: the shared pool absorbs moderate incast (no loss, no\n"
        "detours); once the burst outgrows the pool, DCTCP+DBA drops while\n"
        "DIBS+DBA detours and stays lossless (paper: -75.4% qct_p99)."
    )
    return format_table(rows, title=title)


def test_dba_shared_buffer(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
