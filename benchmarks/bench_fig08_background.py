"""Figure 8 — variable background traffic intensity.

Sweeps the per-host background interarrival time from 10 ms (heavy) to
120 ms (light) with query traffic held at the default.  Paper shape: DIBS
cuts 99th-pct QCT by ~20 ms across the board while 99th-pct FCT of short
background flows rises by under ~2 ms ("collateral damage is consistently
low"), independent of background intensity.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig08_background_interarrival"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="fig08",
    )
    values = [0.010, 0.020, 0.040, 0.080, 0.120]
    results = sweep(base, "bg_interarrival_s", values, schemes=("dctcp", "dibs"), seeds=(0, 1, 2))
    title = (
        "Figure 8: QCT / background FCT vs background interarrival time (s).\n"
        "Paper shape: DIBS improves qct_p99 at every intensity; bg_fct_p99\n"
        "differs by no more than a couple of ms."
    )
    return format_sweep(results, "bg_interarrival_s", title=title)


def test_fig08_background(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
