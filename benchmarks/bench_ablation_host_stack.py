"""Ablation — host stack variants under DIBS reordering.

§4 discusses two host-side knobs for living with detour reordering:
disable fast retransmit (the paper's choice) or raise the dup-ACK
threshold.  Modern stacks add two more: SACK (retransmit only real holes,
cf. the paper's RR-TCP citation [54]) and delayed ACKs (the DCTCP
receiver).  This bench runs the default incast workload under DIBS with
each stack variant.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.metrics.stats import percentile
from repro.transport.base import TcpConfig
from repro.workload.background import BackgroundTraffic
from repro.workload.distributions import web_search_background
from repro.workload.query import QueryTraffic

import common

NAME = "ablation_host_stack"

VARIANTS = [
    ("paper: no fast rtx", dict(fast_retransmit_threshold=None)),
    ("dupack-10", dict(fast_retransmit_threshold=10)),
    ("dupack-10 + sack", dict(fast_retransmit_threshold=10, sack=True)),
    ("dupack-3 + sack", dict(fast_retransmit_threshold=3, sack=True)),
    ("no fast rtx + delack-2", dict(fast_retransmit_threshold=None, delayed_ack_segments=2)),
]


def _run(scenario, tcp_overrides):
    net = scenario.build_network()
    transport = TcpConfig(dctcp=True, ecn=True, **tcp_overrides)
    BackgroundTraffic(net, scenario.bg_interarrival_s, web_search_background(),
                      transport=transport, stop_at=scenario.duration_s).start()
    QueryTraffic(net, scenario.qps, scenario.incast_degree, scenario.response_bytes,
                 transport=transport, stop_at=scenario.duration_s).start()
    net.run(until=scenario.duration_s + scenario.drain_s)
    qcts = net.collector.qct_values()
    flows = net.collector.flows
    return {
        "qct_p99_ms": f"{percentile(qcts, 99) * 1e3:.2f}" if qcts else "-",
        "retransmits": sum(f.retransmits for f in flows),
        "timeouts": sum(f.timeouts for f in flows),
        "detours": net.total_detours(),
    }


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        scheme="dibs", duration_s=1.0 if full else 0.2, name="hoststack",
    )
    rows = []
    for label, overrides in VARIANTS:
        rows.append({"host_stack": label, **_run(base, overrides)})
    title = (
        "Ablation: host stack variants under DIBS (default incast workload).\n"
        "Expected shape: the paper's no-fast-rtx choice wins; dupack-10 is\n"
        "close (slightly more spurious retransmissions).  SACK *hurts* under\n"
        "detour reordering — late packets look like holes and SACK recovery\n"
        "diligently refills all of them — which is precisely why the paper\n"
        "disables loss-signalled recovery instead of making it smarter.\n"
        "Delayed ACKs cost nothing."
    )
    return format_table(rows, title=title)


def test_ablation_host_stack(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
