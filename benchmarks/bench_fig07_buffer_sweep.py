"""Figure 7 — 99th-percentile QCT vs switch buffer size.

Compares DCTCP, DCTCP with infinite buffers, and DCTCP+DIBS as the per-port
buffer shrinks.  Paper shape: DCTCP degrades sharply at small buffers
(drops + timeouts, log-scale QCT), while DIBS stays near the
infinite-buffer line even at tiny buffers.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunTelemetry, run_grid
from repro.experiments.report import format_table

import common

NAME = "fig07_buffer_sweep"

SCHEMES = (("dctcp", "DCTCP"), ("dctcp-inf", "DCTCP w/ infi"), ("dibs", "DCTCP + DIBS"))


def run(full: bool = False, workers: int = 1,
        journal_dir: str | None = None, resume: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="fig07",
    )
    buffers = [25, 100, 300, 500, 700] if full else [5, 10, 25, 50, 100]
    cells = {}
    for buffer_pkts in buffers:
        threshold = max(2, min(base.ecn_threshold_pkts, buffer_pkts // 3))
        for scheme, _label in SCHEMES:
            cells[(buffer_pkts, scheme)] = base.with_overrides(
                scheme=scheme, buffer_pkts=buffer_pkts, ecn_threshold_pkts=threshold,
                name=f"fig07:{scheme}:{buffer_pkts}",
            )
    telemetry = RunTelemetry()
    journal = RunJournal(journal_dir) if journal_dir else None
    results = run_grid(cells, seeds=(0,), workers=workers, telemetry=telemetry,
                       journal=journal, resume=resume)
    rows = []
    for buffer_pkts in buffers:
        row = {"buffer_pkts": buffer_pkts}
        for scheme, label in SCHEMES:
            result = results.get((buffer_pkts, scheme))
            if result is None:  # permanently failed run (see telemetry)
                row[f"{label} qct_p99_ms"] = "!"
                continue
            qct = result.qct_p99_ms
            row[f"{label} qct_p99_ms"] = f"{qct:.2f}" if qct is not None else "-"
            if scheme != "dctcp-inf":
                row[f"{label} drops"] = result.total_drops
        rows.append(row)
    title = (
        "Figure 7: 99th-pct QCT vs buffer size (log-y in the paper).\n"
        "Paper shape: DIBS tracks the infinite-buffer line down to tiny\n"
        "buffers; DCTCP alone blows up as the buffer shrinks."
    )
    return format_table(rows, title=title) + "\n\n" + telemetry.summary()


def test_fig07_buffer_sweep(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
