"""§5.5.4 — oversubscribed fabrics.

Slows switch-to-switch links by 2/3/4x (1:4, 1:9, 1:16 oversubscription).
Paper shape: DIBS's QCT improvement (~20 ms) persists at every
oversubscription level with background FCT unaffected — the bottleneck for
incast remains the receiver's last hop, which DIBS keeps lossless.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "oversubscription"

OVERSUB_LABEL = {1.0: "1:1", 2.0: "1:4", 3.0: "1:9", 4.0: "1:16"}


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, name="oversub",
    )
    rows = []
    for slowdown in (1.0, 2.0, 3.0, 4.0):
        row = {"oversubscription": OVERSUB_LABEL[slowdown]}
        for scheme in ("dctcp", "dibs"):
            result = run_scenario(base.with_overrides(
                scheme=scheme, oversubscription=slowdown,
                name=f"oversub:{scheme}:{slowdown}",
            ))
            qct = result.qct_p99_ms
            fct = result.bg_fct_p99_ms
            row[f"{scheme}:qct_p99_ms"] = f"{qct:.1f}" if qct is not None else "-"
            row[f"{scheme}:bg_fct_p99_ms"] = f"{fct:.2f}" if fct is not None else "-"
        rows.append(row)
    title = (
        "Section 5.5.4: oversubscribed fat-tree fabrics.\n"
        "Paper shape: DIBS lowers qct_p99 at every oversubscription setting\n"
        "without moving background FCT — the last hop stays the bottleneck."
    )
    return format_table(rows, title=title)


def test_oversubscription(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
