"""Figure 15 — large responses at a heavy query rate do NOT break DIBS.

Holds the query rate at the heavy level (paper: 2000 qps; scaled: 250) and
grows the response size from 60 KB to 160 KB.  Paper shape: unlike the qps
overload of Figure 14, DIBS never breaks here — large responses take
several RTTs, giving DCTCP's ECN loop time to throttle the senders, so the
buffer headroom DIBS needs is preserved.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "fig15_large_response"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=0.5 if full else 0.1,
        drain_s=1.0 if full else 0.6,
        bg_interarrival_s=0.120,
        qps=2000.0 if full else common.SCALED_HEAVY_QPS / 4,
        name="fig15",
    )
    values = [60_000, 80_000, 100_000, 120_000, 160_000]
    rows = []
    for size in values:
        row = {"response_bytes": size}
        for scheme in ("dctcp", "dibs"):
            result = run_scenario(base.with_overrides(scheme=scheme, response_bytes=size,
                                                      name=f"fig15:{scheme}:{size}"))
            qct = result.qct_p99_ms
            completion = (
                result.queries_completed / result.queries_started
                if result.queries_started else 1.0
            )
            row[f"{scheme}:qct_p99_ms"] = f"{qct:.1f}" if qct is not None else "-"
            row[f"{scheme}:done"] = f"{completion:.0%}"
            row[f"{scheme}:drops"] = result.total_drops
        rows.append(row)
    title = (
        "Figure 15: large responses at heavy query rate.\n"
        "Paper shape: no breaking point — DIBS keeps qct_p99 at or below\n"
        "DCTCP's for every response size because multi-RTT responses give\n"
        "ECN time to throttle senders."
    )
    return format_table(rows, title=title)


def test_fig15_large_response(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
