"""Figure 9 — variable query arrival rate.

Sweeps query arrival rate (paper: 300-2000 qps on 128 hosts; scaled:
40-250 qps on 16 hosts) with light background traffic.  Paper shape: DIBS
improves 99th-pct QCT consistently; at the highest rates DIBS also
*improves* background FCT because DCTCP alone starts dropping background
packets in the incast hotspots.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_sweep
from repro.experiments.sweep import sweep

import common

NAME = "fig09_query_arrival_rate"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2, bg_interarrival_s=0.120, name="fig09",
    )
    values = [300, 500, 1000, 1500, 2000] if full else [40, 65, 125, 190, 250]
    results = sweep(base, "qps", values, schemes=("dctcp", "dibs"), seeds=(0, 1, 2))
    title = (
        "Figure 9: QCT / background FCT vs query arrival rate (qps).\n"
        "Paper shape: DIBS wins on qct_p99 at every rate; at the top rate\n"
        "DIBS also helps bg_fct_p99 (DCTCP alone drops background packets)."
    )
    return format_sweep(results, "qps", title=title)


def test_fig09_qps(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
