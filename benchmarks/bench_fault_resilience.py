"""Fault resilience — incast QCT under failed core links (Fig. 7 style).

DIBS's virtual buffer is the *live* neighborhood of a congested switch:
every failed core link removes detour capacity and ECMP diversity at once.
This bench kills 0/1/2/4 core-agg links (spread over distinct aggregation
switches so the fabric stays connected) before the workload starts and
compares DCTCP against DCTCP+DIBS on the usual incast workload.

Expected shape: both schemes degrade as links die — the fabric is losing
bisection bandwidth — but DIBS keeps absorbing the incast burst with the
detour capacity that remains, while DCTCP's drops climb.  Every cell runs
with the livelock watchdog armed and periodic in-run conservation audits
(``invariant_check_interval_s``); a watchdog or invariant abort would
surface as a failed run in the telemetry footer.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import RunTelemetry, run_grid
from repro.experiments.report import format_table
from repro.faults import LINK_DOWN

import common

NAME = "fault_resilience"

SCHEMES = (("dctcp", "DCTCP"), ("dibs", "DCTCP + DIBS"))
FAILURE_COUNTS = (0, 1, 2, 4)


def pick_core_links(topology, n: int) -> tuple[tuple[str, str], ...]:
    """Choose ``n`` core-agg links to fail, each on a distinct aggregation
    switch and a distinct core (greedy over topology order), so every
    switch keeps at least one live uplink and the fabric stays connected."""
    used_aggs: set[str] = set()
    used_cores: set[str] = set()
    picked: list[tuple[str, str]] = []
    candidates = [
        (link.node_a, link.node_b)
        for link in topology.links
        if link.node_a.startswith("agg_") and link.node_b.startswith("core_")
    ]
    for agg, core in candidates:
        if len(picked) == n:
            break
        if agg in used_aggs or core in used_cores:
            continue
        picked.append((agg, core))
        used_aggs.add(agg)
        used_cores.add(core)
    if len(picked) < n:
        raise ValueError(f"topology has too few spread core links for {n} failures")
    return tuple(picked)


def run(full: bool = False, workers: int = 1,
        journal_dir: str | None = None, resume: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=1.0 if full else 0.2,
        invariant_check_interval_s=0.05,
        name="faults",
    )
    link_pool = pick_core_links(base.build_topology(), max(FAILURE_COUNTS))
    cells = {}
    for failed in FAILURE_COUNTS:
        # All failures land at t=0: the links are dead for the whole run.
        faults = tuple(
            (0.0, LINK_DOWN, agg, core, 1) for agg, core in link_pool[:failed]
        )
        for scheme, _label in SCHEMES:
            cells[(failed, scheme)] = base.with_overrides(
                scheme=scheme,
                faults=faults if faults else None,
                name=f"faults:{scheme}:{failed}",
            )
    telemetry = RunTelemetry()
    journal = RunJournal(journal_dir) if journal_dir else None
    results = run_grid(cells, seeds=(0,), workers=workers, telemetry=telemetry,
                       journal=journal, resume=resume)
    rows = []
    for failed in FAILURE_COUNTS:
        row = {"failed_core_links": failed}
        for scheme, label in SCHEMES:
            result = results.get((failed, scheme))
            if result is None:  # permanently failed run (see telemetry)
                row[f"{label} qct_p99_ms"] = "!"
                continue
            qct = result.qct_p99_ms
            row[f"{label} qct_p99_ms"] = f"{qct:.2f}" if qct is not None else "-"
            row[f"{label} drops"] = result.total_drops
            if scheme == "dibs":
                row["detours"] = result.detours
                row["link_down_drops"] = result.drops.get("link_down", 0)
                row["queries"] = f"{result.queries_completed}/{result.queries_started}"
                row["audits"] = result.invariant_checks
        rows.append(row)
    title = (
        "Fault resilience: 99th-pct QCT vs failed core-agg links.\n"
        "Expected shape: both schemes degrade with lost bisection capacity,\n"
        "but DIBS keeps absorbing the incast with the remaining detour\n"
        "fabric while DCTCP's drops climb.  All runs execute with the\n"
        "livelock watchdog armed and periodic conservation audits."
    )
    # Executor-resilience footer: how much graceful degradation the sweep
    # itself needed (retries/backoff), and what the journal did for it.
    resilience = (
        f"resilience: retries {telemetry.retries}"
        f" | backoff waits {telemetry.backoff_waits} ({telemetry.backoff_total_s:.2f}s)"
        f" | timeout escalations {telemetry.timeout_escalations}"
        f" | cells resumed {telemetry.cells_resumed}, journaled {telemetry.cells_journaled}"
        f" | interrupted {telemetry.interrupted}"
    )
    return format_table(rows, title=title) + "\n\n" + telemetry.summary() + "\n" + resilience


def test_fault_resilience(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
