"""Substrate microbenchmark — simulator event throughput.

Not a paper figure: measures the discrete-event engine and the full
packet pipeline (host -> 3 switch hops -> host with DCTCP) in events/sec,
so regressions in the substrate are visible in benchmark history.
"""

from repro.core.config import DibsConfig
from repro.net.network import Network, SwitchQueueConfig
from repro.sim.engine import Scheduler
from repro.topo import fat_tree


def test_raw_scheduler_throughput(benchmark):
    """Schedule/fire 50k no-op events."""

    def run():
        sched = Scheduler()
        for i in range(50_000):
            sched.schedule(i * 1e-6, _noop)
        sched.run()
        return sched.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert events == 50_000


def _noop():
    pass


def test_packet_pipeline_throughput(benchmark):
    """End-to-end flows across the fat-tree under DIBS."""

    def run():
        net = Network(
            fat_tree(k=4),
            switch_queues=SwitchQueueConfig(buffer_pkts=30, ecn_threshold_pkts=8),
            dibs=DibsConfig(),
            seed=1,
        )
        flows = [
            net.start_flow(f"host_{i}", "host_0", 30_000, transport="dibs", kind="query")
            for i in range(1, 13)
        ]
        net.run(until=2.0)
        assert all(f.completed for f in flows)
        return net.scheduler.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert events > 5_000
