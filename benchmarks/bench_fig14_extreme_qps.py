"""Figure 14 — where DIBS breaks: extreme query arrival rates.

Pushes qps far beyond the heavy workload (paper: 6000-14000 qps breaks
DIBS past ~10000; scaled: 750-1750 with the break expected past ~1250).
At the breaking point, detoured packets cannot leave the network before
new bursts arrive, queues build everywhere, and detouring becomes *worse*
than dropping — QCT and background FCT both explode, and queries stop
completing within the run.
"""

from repro.experiments import PAPER_DEFAULTS, SCALED_DEFAULTS
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

import common

NAME = "fig14_extreme_qps"


def run(full: bool = False) -> str:
    base = (PAPER_DEFAULTS if full else SCALED_DEFAULTS).with_overrides(
        duration_s=0.5 if full else 0.08,
        drain_s=1.0 if full else 0.5,
        bg_interarrival_s=0.120,
        name="fig14",
    )
    # Scaled break point: each query occupies 12 of 16 hosts, so the
    # network-wide saturation the paper reaches at ~10000 qps on 128 hosts
    # arrives near ~4000 qps here.
    values = [2000, 6000, 8000, 10000, 12000, 14000] if full else [250, 1000, 2000, 3000, 4000]
    rows = []
    for qps in values:
        row = {"qps": qps}
        for scheme in ("dctcp", "dibs"):
            result = run_scenario(base.with_overrides(scheme=scheme, qps=qps,
                                                      name=f"fig14:{scheme}:{qps}"))
            qct = result.qct_p99_ms
            fct = result.bg_fct_p99_ms
            completion = (
                result.queries_completed / result.queries_started
                if result.queries_started else 1.0
            )
            row[f"{scheme}:qct_p99_ms"] = f"{qct:.1f}" if qct is not None else "-"
            row[f"{scheme}:bg_fct_p99_ms"] = f"{fct:.1f}" if fct is not None else "-"
            row[f"{scheme}:done"] = f"{completion:.0%}"
            row[f"{scheme}:drops"] = result.total_drops
        rows.append(row)
    title = (
        "Figure 14: extreme query rates — the DIBS breaking point.\n"
        "Paper shape: past ~10000 qps (scaled: ~4000) DIBS's advantage\n"
        "collapses — detoured packets can't leave before new bursts arrive,\n"
        "queues build network-wide, DIBS itself is forced to drop, and both\n"
        "query and background latency blow up."
    )
    return format_table(rows, title=title)


def test_fig14_extreme_qps(benchmark):
    common.bench_entry(benchmark, NAME, lambda: run(False))


if __name__ == "__main__":
    common.cli_main(NAME, run)
