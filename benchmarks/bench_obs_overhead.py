"""Observability overhead benchmark — proving off-mode is free.

Not a paper figure: guards the repro.obs bargain.  Three claims are
measured (and, with ``--check``, enforced):

1. **Off-mode is free.**  The current plain run loop is compared against
   an in-repo replica of the pre-observability loop (binary heap, same
   Event objects, no hook/settle support) on a no-op event calendar.
   The replica runs on `HeapScheduler` — the reference heap engine kept
   in `repro.sim.engine_heap` — because the default engine no longer
   carries a `_heap` at all (it is a calendar queue; see
   `repro.sim.engine`).  Gate: slowdown <= 2%.  Since the calendar
   engine is *faster* than the heap replica, the gate now passes with
   margin; it remains in place to catch an obs feature re-introducing
   per-event cost.
2. **Profiled mode is cheap.**  The same calendar with the default
   (sampled) `SchedulerProfiler` installed versus without.  Gate:
   slowdown <= 8%.  The default profiler reads the clock once per
   ~16-31 event window (see `repro.obs.profiler`), so the per-event cost
   is a local countdown decrement; `sample_stride=1` (exact per-event
   timing) is reported ungated for contrast.
3. **Metrics are bit-identical either way.**  One scenario is run with
   every obs feature on (profile + heartbeat + trace + occupancy
   sampling + spans + timeseries + flight recorder) and with everything
   off; every metric except wall time and the instrumentation payloads
   must match byte for byte.  (The scenario objects themselves
   legitimately differ — the obs knobs — so the comparison covers the
   metrics payload, not the scenario echo.)
4. **Span sampling is cheap.**  The incast packet pipeline with a
   `SpanRecorder` at the default 1/64 rate versus the same pipeline
   without one; a spans-off A/A arm measures the pipeline noise floor
   (spans off *is* the plain pipeline: every per-packet check is a
   `pkt.span is not None` slot test that exists either way).  Gate:
   sampled slowdown <= 5% plus the observed noise floor.

Both gates run on the controlled calendar, not on a full experiment,
deliberately: an A/A test (two identical arms) of `run_scenario` wall
time on a shared CI box shows several percent of spread — more than the
budgets being enforced — while the calendar arms, interleaved with GC
parked, reproduce far more tightly.  A full incast pipeline and a full
experiment are still timed and reported as *ungated* context rows.
Per-arm minima are compared (see `_interleaved_best`): preemption and
allocator noise only ever add time, so the minimum is the least-biased
estimate of true cost.  The calendar set carries its own A/A arm as a
noise meter — when even two identical arms disagree beyond
`AA_TOLERANCE`, the run reports the ratios but refuses to turn them
into a CI verdict.

Usage::

    python benchmarks/bench_obs_overhead.py [--rounds N] [--check]

``--check`` exits non-zero when a gate fails (the CI smoke leg).
"""

from __future__ import annotations

import argparse
import gc
import heapq
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import DibsConfig
from repro.experiments.report import format_table
from repro.experiments.runner import result_to_dict, run_scenario
from repro.experiments.scenarios import SCALED_DEFAULTS
from repro.net.network import Network, SwitchQueueConfig
from repro.obs.profiler import SchedulerProfiler
from repro.sim.engine import Scheduler
from repro.sim.engine_heap import HeapScheduler
from repro.topo import fat_tree

import common

# Short samples on purpose: contention bursts on a shared box last tens
# of milliseconds, so a ~35ms sample either dodges a burst entirely or is
# discarded by the best-of reduction — where a 100ms+ sample would smear
# the burst into every measurement.
RAW_EVENTS = 20_000

# Gates (fractional slowdown of the best-of-N calendar time): the
# off-mode loop versus the pre-observability replica, and the sampled
# profiled loop versus the off-mode one.  The profiled budget was 5%
# when the off-mode loop ran on a binary heap; the calendar engine cut
# the off-mode per-event cost, so the *same absolute* per-event profiler
# cost (a countdown decrement, ~16-31 events per clock read) is now a
# larger fraction of the denominator.  Budget restated against the
# faster loop; the absolute cost is unchanged and still gated.
OFF_MODE_BUDGET = 0.02
PROFILED_BUDGET = 0.08
# Sampled span tracing (default 1/64 rate) on the incast pipeline.
SPANS_BUDGET = 0.05

# Maximum spread tolerated between the two identical "obs off" arms
# before the gates are declared unenforceable on this machine: if two
# A/A arms disagree by more than this, a few-percent gate verdict would
# be weather, not signal.
AA_TOLERANCE = 0.015

DETERMINISM_SCENARIO = SCALED_DEFAULTS.with_overrides(
    name="obs-overhead", duration_s=0.03, drain_s=0.3, qps=100.0,
    incast_degree=6, bg_enabled=False,
)

# Ungated context row: a real experiment (incast plus the workload and
# metrics layers run_scenario brings in) with and without --profile.
EXPERIMENT_SCENARIO = SCALED_DEFAULTS.with_overrides(
    name="obs-profiled-context", duration_s=0.08, drain_s=0.3, qps=150.0,
    incast_degree=8, bg_enabled=False,
)


def _noop():
    pass


# ----------------------------------------------------------------------
# arm 0: the pre-observability run loop, replicated on today's Scheduler
# ----------------------------------------------------------------------
def _legacy_run(sched: HeapScheduler, until=None, max_events=None) -> int:
    """The run loop as it was before hooks/profiling/settling existed,
    operating on a HeapScheduler's heap (the default engine is now a
    calendar queue with no ``_heap``).  This is the in-repo baseline the
    off-mode gate compares against — measured fresh on the same machine
    and Python, so the comparison survives hardware changes where a
    stored number would not."""
    processed = 0
    heap = sched._heap
    watchdog = sched.watchdog
    wd_interval = sched.watchdog_interval_events
    wd_countdown = wd_interval
    while heap:
        ev = heap[0]
        if until is not None and ev.time > until:
            break
        heapq.heappop(heap)
        if ev.cancelled:
            continue
        sched.now = ev.time
        ev.fn(*ev.args)
        processed += 1
        sched._events_processed += 1
        if watchdog is not None:
            wd_countdown -= 1
            if wd_countdown <= 0:
                wd_countdown = wd_interval
                watchdog(sched)
        if max_events is not None and processed >= max_events:
            break
    return processed


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _raw_calendar(run_loop, make_profiler=None, make_sched=Scheduler) -> float:
    """Seconds to drain RAW_EVENTS no-op events (GC parked while timing:
    collection pauses land on whichever arm happens to cross a threshold,
    which is exactly the kind of noise a 2% gate cannot absorb)."""
    sched = make_sched()
    if make_profiler is not None:
        make_profiler().install(sched)
    for i in range(RAW_EVENTS):
        sched.schedule_at(i * 1e-6, _noop)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        processed = run_loop(sched)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    assert processed == RAW_EVENTS
    return elapsed


def _experiment(profiled: bool) -> float:
    """Seconds to run a full experiment, optionally profiled.

    Timed end to end (build + run + aggregation), which is the wall time
    a user actually pays for turning ``--profile`` on.
    """
    scenario = EXPERIMENT_SCENARIO.with_overrides(profile=profiled)
    started = time.perf_counter()
    run_scenario(scenario)
    return time.perf_counter() - started


def _pipeline(profiled: bool = False, span_rate: float = 0.0) -> float:
    """Seconds to run the bare incast packet pipeline, optionally profiled
    or with sampled span tracing attached."""
    net = Network(
        fat_tree(k=4),
        switch_queues=SwitchQueueConfig(buffer_pkts=30, ecn_threshold_pkts=8),
        dibs=DibsConfig(),
        seed=1,
    )
    if profiled:
        SchedulerProfiler().install(net.scheduler)
    spans = None
    if span_rate > 0:
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder(net, span_rate, seed=1).attach()
    flows = [
        net.start_flow(f"host_{i}", "host_0", 30_000, transport="dibs", kind="query")
        for i in range(1, 13)
    ]
    started = time.perf_counter()
    net.run(until=2.0)
    elapsed = time.perf_counter() - started
    assert all(f.completed for f in flows)
    if spans is not None:
        spans.close()
        assert spans.records  # the sampled arm must actually sample
    return elapsed


def _interleaved_best(arms: dict, rounds: int, shuffle: bool = False) -> dict:
    """Run every arm once per round (round-robin) and return each arm's
    *minimum* time.  Noise (scheduler preemption, other tenants) only ever
    adds time, so the minimum is the least-biased estimate of an arm's
    true cost — medians still wobble by several percent on a shared box,
    which is more than the gates budget for.  ``shuffle`` randomizes the
    within-round order (seeded, reproducible) so interference that is
    periodic at round granularity cannot bias one arm systematically."""
    rng = random.Random(0x0B5C0DE)
    names = list(arms)
    samples = {name: [] for name in arms}
    for name, fn in arms.items():  # one untimed warmup pass per arm
        fn()
    for _ in range(rounds):
        if shuffle:
            rng.shuffle(names)
        for name in names:
            samples[name].append(arms[name]())
    return {name: min(times) for name, times in samples.items()}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def _canonical_metrics(result) -> str:
    # include_scenario=False: the two arms run *different scenarios by
    # construction* (one has the obs knobs set), so the scenario echo is
    # excluded; everything measured must still match byte for byte.
    payload = result_to_dict(result, include_scenario=False)
    for name in ("wall_seconds", "run_loop_seconds", "profile", "collector",
                 "timeseries"):
        payload.pop(name, None)
    return json.dumps(payload, sort_keys=True, default=str)


def _determinism_identical() -> bool:
    with tempfile.TemporaryDirectory(prefix="obs-overhead-") as tmp:
        tmp = Path(tmp)
        instrumented = DETERMINISM_SCENARIO.with_overrides(
            profile=True,
            heartbeat_interval_s=0.001,
            heartbeat_path=str(tmp / "hb.jsonl"),
            trace_file=str(tmp / "run.trace.jsonl"),
            trace_occupancy_interval_s=0.002,
            span_sample_rate=0.25,
            timeseries_interval_s=0.002,
            flight_recorder_dir=str(tmp / "flight"),
        )
        on = run_scenario(instrumented)
        off = run_scenario(DETERMINISM_SCENARIO)
        return _canonical_metrics(on) == _canonical_metrics(off)


# ----------------------------------------------------------------------
def run(full: bool = False, rounds: int = 5) -> tuple[str, list[str]]:
    """Return the report text and a list of gate failures (empty = pass)."""
    raw_arms = {
        "legacy loop (pre-obs replica)": _raw_calendar_legacy,
        "current loop, obs off": _raw_calendar_current,
        # Identical to the arm above: the spread between the two is the
        # measurement noise floor, and the gates are only enforced when
        # that floor is well under the budgets being checked.
        "current loop, obs off (A/A)": _raw_calendar_current,
        "current loop, profiled": lambda: _raw_calendar(
            lambda sched: sched.run(), SchedulerProfiler),
        "current loop, profiled exact": lambda: _raw_calendar(
            lambda sched: sched.run(),
            lambda: SchedulerProfiler(sample_stride=1)),
    }
    def _raw_verdict(measured: dict) -> tuple:
        """(aa_spread, off_ratio, prof_ratio, gates_ok) for a raw set.

        The observed A/A spread is credited against the budgets: a gate
        only fails by a margin the measurement demonstrably can resolve.
        A real regression (e.g. accidentally running the exact loop,
        +30%+) still trips it; arm-level weather does not.
        """
        off_best = min(measured["current loop, obs off"],
                       measured["current loop, obs off (A/A)"])
        aa = abs(measured["current loop, obs off (A/A)"]
                 / measured["current loop, obs off"] - 1.0)
        off_ratio = off_best / measured["legacy loop (pre-obs replica)"]
        prof_ratio = measured["current loop, profiled"] / off_best
        ok = (aa <= AA_TOLERANCE
              and off_ratio <= 1 + OFF_MODE_BUDGET + aa
              and prof_ratio <= 1 + PROFILED_BUDGET + aa)
        return aa, off_ratio, prof_ratio, ok

    # The gated arms get 3x the rounds of the context arms; when the A/A
    # spread or a gate is out of budget the whole set is re-measured and
    # per-arm minima merged (a contention burst only ever inflates
    # samples, so the merged minimum converges on the quiet-machine cost
    # instead of failing CI on a noisy neighbour).
    raw = _interleaved_best(raw_arms, 3 * rounds, shuffle=True)
    for _ in range(2):
        if _raw_verdict(raw)[-1]:
            break
        again = _interleaved_best(raw_arms, 3 * rounds, shuffle=True)
        raw = {name: min(raw[name], again[name]) for name in raw}
    pipe_arms = {
        "pipeline, obs off": lambda: _pipeline(),
        # Identical to the arm above (spans off IS the plain pipeline):
        # the spread between the two is the pipeline noise floor the
        # spans gate credits.
        "pipeline, spans off (A/A)": lambda: _pipeline(),
        "pipeline, spans 1/64": lambda: _pipeline(span_rate=1.0 / 64.0),
        "pipeline, profiled": lambda: _pipeline(profiled=True),
    }

    def _pipe_verdict(measured: dict) -> tuple:
        """(aa_spread, spans_ratio, gate_ok) for a pipeline set."""
        off_best = min(measured["pipeline, obs off"],
                       measured["pipeline, spans off (A/A)"])
        aa = abs(measured["pipeline, spans off (A/A)"]
                 / measured["pipeline, obs off"] - 1.0)
        spans_ratio = measured["pipeline, spans 1/64"] / off_best
        return aa, spans_ratio, spans_ratio <= 1 + SPANS_BUDGET + aa

    pipe = _interleaved_best(pipe_arms, rounds)
    for _ in range(2):
        if _pipe_verdict(pipe)[-1]:
            break
        again = _interleaved_best(pipe_arms, rounds)
        pipe = {name: min(pipe[name], again[name]) for name in pipe}
    experiment = _interleaved_best(
        {
            "experiment, obs off": lambda: _experiment(profiled=False),
            "experiment, profiled": lambda: _experiment(profiled=True),
        },
        rounds,
    )
    identical = _determinism_identical()

    aa_spread, off_ratio, prof_ratio, _ = _raw_verdict(raw)
    # The two A/A arms are the same measurement; their joint minimum is
    # the best off-mode estimate.
    off_best = min(raw["current loop, obs off"],
                   raw["current loop, obs off (A/A)"])
    exact_ratio = raw["current loop, profiled exact"] / off_best
    pipe_aa, spans_ratio, _ = _pipe_verdict(pipe)
    pipe_off_best = min(pipe["pipeline, obs off"],
                        pipe["pipeline, spans off (A/A)"])
    pipe_ratio = pipe["pipeline, profiled"] / pipe_off_best
    exp_ratio = experiment["experiment, profiled"] / experiment["experiment, obs off"]

    rows = [
        {
            "arm": "raw calendar, legacy loop",
            "best_s": f"{raw['legacy loop (pre-obs replica)']:.4f}",
            "events_per_s": f"{RAW_EVENTS / raw['legacy loop (pre-obs replica)']:,.0f}",
            "vs_baseline": "1.000 (baseline)",
        },
        {
            "arm": "raw calendar, obs off",
            "best_s": f"{off_best:.4f}",
            "events_per_s": f"{RAW_EVENTS / off_best:,.0f}",
            "vs_baseline": f"{off_ratio:.3f} (gate <= {1 + OFF_MODE_BUDGET:.2f})",
        },
        {
            "arm": "raw calendar, profiled",
            "best_s": f"{raw['current loop, profiled']:.4f}",
            "events_per_s": f"{RAW_EVENTS / raw['current loop, profiled']:,.0f}",
            "vs_baseline": f"{prof_ratio:.3f} (gate <= {1 + PROFILED_BUDGET:.2f}, vs obs off)",
        },
        {
            "arm": "raw calendar, profiled exact",
            "best_s": f"{raw['current loop, profiled exact']:.4f}",
            "events_per_s": f"{RAW_EVENTS / raw['current loop, profiled exact']:,.0f}",
            "vs_baseline": f"{exact_ratio:.3f} (stride 1, ungated)",
        },
        {
            "arm": "packet pipeline, obs off",
            "best_s": f"{pipe_off_best:.4f}",
            "events_per_s": "-",
            "vs_baseline": "1.000 (baseline)",
        },
        {
            "arm": "packet pipeline, spans 1/64",
            "best_s": f"{pipe['pipeline, spans 1/64']:.4f}",
            "events_per_s": "-",
            "vs_baseline": f"{spans_ratio:.3f} (gate <= {1 + SPANS_BUDGET:.2f})",
        },
        {
            "arm": "packet pipeline, profiled",
            "best_s": f"{pipe['pipeline, profiled']:.4f}",
            "events_per_s": "-",
            "vs_baseline": f"{pipe_ratio:.3f} (context, ungated)",
        },
        {
            "arm": "full experiment, obs off",
            "best_s": f"{experiment['experiment, obs off']:.4f}",
            "events_per_s": "-",
            "vs_baseline": "1.000 (baseline)",
        },
        {
            "arm": "full experiment, profiled",
            "best_s": f"{experiment['experiment, profiled']:.4f}",
            "events_per_s": "-",
            "vs_baseline": f"{exp_ratio:.3f} (context, ungated)",
        },
    ]
    text = format_table(rows, title=f"observability overhead (best of {rounds} interleaved rounds)")
    text += (
        f"\nA/A noise floor (two identical obs-off arms): "
        f"{100 * aa_spread:.2f}% (tolerance {100 * AA_TOLERANCE:.1f}%)"
    )
    text += (
        f"\npipeline A/A noise floor (two identical spans-off arms): "
        f"{100 * pipe_aa:.2f}%"
    )
    text += "\nmetrics bit-identical with all obs on vs off: " + ("yes" if identical else "NO")

    failures = []
    if aa_spread > AA_TOLERANCE:
        # Two identical arms disagree by more than the gates' budgets can
        # absorb: a verdict either way would be noise.  Report loudly but
        # do not fail CI on the weather.
        text += (
            f"\nWARNING: overhead gates not enforced — A/A spread "
            f"{100 * aa_spread:.2f}% exceeds {100 * AA_TOLERANCE:.1f}% "
            f"(machine too noisy for a "
            f"{100 * min(OFF_MODE_BUDGET, PROFILED_BUDGET):.0f}% budget)"
        )
    else:
        # The observed noise floor is credited on top of each budget:
        # a failure must exceed what the measurement can resolve.
        if off_ratio > 1 + OFF_MODE_BUDGET + aa_spread:
            failures.append(
                f"off-mode loop is {100 * (off_ratio - 1):.1f}% slower than the "
                f"pre-obs baseline (budget {100 * OFF_MODE_BUDGET:.0f}% "
                f"+ {100 * aa_spread:.2f}% noise floor)"
            )
        if prof_ratio > 1 + PROFILED_BUDGET + aa_spread:
            failures.append(
                f"sampled profiled loop is {100 * (prof_ratio - 1):.1f}% slower than "
                f"off-mode (budget {100 * PROFILED_BUDGET:.0f}% "
                f"+ {100 * aa_spread:.2f}% noise floor)"
            )
    if spans_ratio > 1 + SPANS_BUDGET + pipe_aa:
        failures.append(
            f"1/64-sampled span tracing is {100 * (spans_ratio - 1):.1f}% slower "
            f"than the spans-off pipeline (budget {100 * SPANS_BUDGET:.0f}% "
            f"+ {100 * pipe_aa:.2f}% noise floor)"
        )
    if not identical:
        failures.append("metrics differ between obs-on and obs-off runs")
    return text, failures


def _raw_calendar_legacy() -> float:
    return _raw_calendar(_legacy_run, make_sched=HeapScheduler)


def _raw_calendar_current() -> float:
    return _raw_calendar(lambda sched: sched.run())


def main() -> int:
    parser = argparse.ArgumentParser(description="Measure observability overhead")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per arm (interleaved; median reported)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when an overhead gate fails (CI mode)")
    args = parser.parse_args()
    text, failures = run(rounds=args.rounds)
    common.save_table("bench_obs_overhead", text)
    print(text)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
